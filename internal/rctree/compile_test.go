package rctree

import (
	"math/rand"
	"testing"
)

// randomTestTree builds a seeded random tree without importing topo
// (which would cycle).
func randomTestTree(seed int64, n int) *Tree {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	ids := []int{b.MustRoot("n0", 1+rng.Float64(), 1e-15*(1+rng.Float64()))}
	for i := 1; i < n; i++ {
		parent := ids[rng.Intn(len(ids))]
		ids = append(ids, b.MustAttach(parent, "", 1+rng.Float64(), 1e-15*rng.Float64()))
	}
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Compile must produce a permutation that is (a) a bijection, (b)
// topologically ordered (parents before children), (c) partitioned
// into contiguous depth levels, with element values and child ranges
// matching the tree.
func TestCompileInvariants(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		tree := randomTestTree(seed, 1+int(seed)*13)
		c := Compile(tree)
		n := tree.N()
		if c.N() != n {
			t.Fatalf("seed %d: N = %d, want %d", seed, c.N(), n)
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			u := int(c.ToUser[i])
			if seen[u] {
				t.Fatalf("seed %d: user index %d mapped twice", seed, u)
			}
			seen[u] = true
			if int(c.FromUser[u]) != i {
				t.Fatalf("seed %d: FromUser[ToUser[%d]] = %d", seed, i, c.FromUser[u])
			}
			if c.R[i] != tree.R(u) || c.C[i] != tree.C(u) {
				t.Fatalf("seed %d: element values differ at compiled %d", seed, i)
			}
			if p := tree.Parent(u); p == Source {
				if c.Parent[i] != Source {
					t.Fatalf("seed %d: compiled %d should be a root", seed, i)
				}
			} else {
				cp := int(c.Parent[i])
				if cp != int(c.FromUser[p]) {
					t.Fatalf("seed %d: parent mismatch at compiled %d", seed, i)
				}
				if cp >= i {
					t.Fatalf("seed %d: parent %d not before child %d", seed, cp, i)
				}
			}
			// Child range must cover exactly the tree's children.
			kids := tree.Children(u)
			lo, hi := int(c.ChildStart[i]), int(c.ChildStart[i+1])
			if hi-lo != len(kids) {
				t.Fatalf("seed %d: compiled %d has %d children, want %d", seed, i, hi-lo, len(kids))
			}
			for k, ch := range kids {
				if int(c.ToUser[lo+k]) != ch {
					t.Fatalf("seed %d: compiled %d child %d mismatch", seed, i, k)
				}
			}
		}
		// Levels: contiguous, cover [0, n), node at level l has depth l+1.
		if int(c.LevelStart[0]) != 0 || int(c.LevelStart[c.Levels()]) != n {
			t.Fatalf("seed %d: level bounds %v", seed, c.LevelStart)
		}
		for l := 0; l < c.Levels(); l++ {
			for i := c.LevelStart[l]; i < c.LevelStart[l+1]; i++ {
				if d := tree.Depth(int(c.ToUser[i])); d != l+1 {
					t.Fatalf("seed %d: compiled %d at level %d has depth %d", seed, i, l, d)
				}
			}
		}
	}
}

// Compile caches its plan on the tree and invalidates on SetR/SetC.
func TestCompileCacheInvalidation(t *testing.T) {
	tree := randomTestTree(7, 40)
	c1 := Compile(tree)
	if c2 := Compile(tree); c2 != c1 {
		t.Fatal("second Compile should return the cached plan")
	}
	oldR := tree.R(3)
	if err := tree.SetR(3, oldR*2); err != nil {
		t.Fatal(err)
	}
	c3 := Compile(tree)
	if c3 == c1 {
		t.Fatal("SetR must invalidate the cached plan")
	}
	if got := c3.R[c3.FromUser[3]]; got != oldR*2 {
		t.Fatalf("recompiled R = %v, want %v", got, oldR*2)
	}
	if err := tree.SetC(0, tree.C(0)+1e-15); err != nil {
		t.Fatal(err)
	}
	if c4 := Compile(tree); c4 == c3 {
		t.Fatal("SetC must invalidate the cached plan")
	}
	// Clones must not share the cache.
	cl := tree.Clone()
	if Compile(cl) == Compile(tree) {
		t.Fatal("clone shares the original's compiled plan")
	}
}

// EachLevelUp/Down must visit every node exactly once, and the
// parallel level schedule must respect dependency order: by the time a
// range containing node i runs, all its children (Up) or its parent
// (Down) have been fully processed.
func TestEachLevelCoverage(t *testing.T) {
	tree := randomTestTree(11, 700)
	testEachLevel(t, Compile(tree))
	// A wide star exercises the chunked goroutine path (level width
	// above minChunk).
	b := NewBuilder()
	hub := b.MustRoot("hub", 1, 1e-15)
	for i := 0; i < 3*minChunk; i++ {
		b.MustAttach(hub, "", 1, 1e-15)
	}
	star, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	testEachLevel(t, Compile(star))
}

func testEachLevel(t *testing.T, c *Compiled) {
	t.Helper()
	for _, parallel := range []bool{false, true} {
		visited := make([]int32, c.N()) // guarded by level barriers
		c.EachLevelUp(parallel, func(lo, hi int) {
			for i := hi - 1; i >= lo; i-- {
				visited[i]++
				for ch := c.ChildStart[i]; ch < c.ChildStart[i+1]; ch++ {
					if visited[ch] != 1 {
						t.Errorf("up: child %d not done before %d", ch, i)
					}
				}
			}
		})
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("up parallel=%v: node %d visited %d times", parallel, i, v)
			}
		}
		visited = make([]int32, c.N())
		c.EachLevelDown(parallel, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if p := c.Parent[i]; p != Source && visited[p] != 1 {
					t.Errorf("down: parent %d not done before %d", p, i)
				}
				visited[i]++
			}
		})
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("down parallel=%v: node %d visited %d times", parallel, i, v)
			}
		}
	}
}
