package rctree

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"100", 100},
		{"1.5", 1.5},
		{"-2.5", -2.5},
		{"1e-12", 1e-12},
		{"1E-12", 1e-12},
		{"2.5e3", 2500},
		{"1f", 1e-15},
		{"10fF", 10e-15},
		{"1p", 1e-12},
		{"3.3pF", 3.3e-12},
		{"1n", 1e-9},
		{"2ns", 2e-9},
		{"1u", 1e-6},
		{"1m", 1e-3},
		{"1k", 1e3},
		{"4.7kohm", 4.7e3},
		{"1meg", 1e6},
		{"2MEG", 2e6},
		{"1x", 1e6},
		{"1g", 1e9},
		{"1t", 1e12},
		{"1a", 1e-18},
		{" 5p ", 5e-12},
		{"1e", 1}, // dangling exponent letter treated as (unknown) suffix
	}
	for _, tc := range cases {
		got, err := ParseValue(tc.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", tc.in, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-9*math.Abs(tc.want)+1e-30 {
			t.Errorf("ParseValue(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "p", "--3", ".", "k12"} {
		if v, err := ParseValue(in); err == nil {
			t.Errorf("ParseValue(%q) = %v, want error", in, v)
		}
	}
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0, "s", "0s"},
		{1.2e-9, "s", "1.2ns"},
		{5.5e-10, "s", "550ps"},
		{1e-12, "F", "1pF"},
		{81.25, "ohm", "81.25ohm"},
		{4700, "ohm", "4.7kohm"},
		{1e6, "Hz", "1MHz"},
		{-2e-9, "s", "-2ns"},
		{1e-15, "F", "1fF"},
		{3e-18, "F", "3aF"},
		{2e-21, "F", "0.002aF"},
	}
	for _, tc := range cases {
		if got := FormatSI(tc.v, tc.unit); got != tc.want {
			t.Errorf("FormatSI(%v,%q) = %q, want %q", tc.v, tc.unit, got, tc.want)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := FormatOhms(100); got != "100ohm" {
		t.Errorf("FormatOhms = %q", got)
	}
	if got := FormatFarads(2e-12); got != "2pF" {
		t.Errorf("FormatFarads = %q", got)
	}
	if got := FormatSeconds(1.5e-9); got != "1.5ns" {
		t.Errorf("FormatSeconds = %q", got)
	}
}

// Property: formatting then parsing round-trips to within the 4-digit
// formatting precision for positive magnitudes in the circuit range.
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(mant uint16, exp uint8) bool {
		m := 0.1 + float64(mant%9000)/1000.0 // 0.1 .. 9.1
		// Stay below 1e6: the display prefix "M" (mega) deliberately
		// differs from SPICE's parse convention ("meg"), so the
		// round-trip property only holds up through "k".
		e := int(exp%19) - 15 // 1e-15 .. 1e3
		v := m * math.Pow(10, float64(e))
		s := FormatSI(v, "")
		got, err := ParseValue(s)
		if err != nil {
			t.Logf("parse %q: %v", s, err)
			return false
		}
		return math.Abs(got-v) <= 2e-3*v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
