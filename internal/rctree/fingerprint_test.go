package rctree

import (
	"math"
	"testing"
)

// Regression: the pre-fix Fingerprint mixed name bytes with no length
// or terminator, so a circuit's identity bytes formed one undelimited
// stream. The two trees below are different circuits (different names,
// different element values) whose old byte streams were identical —
// shifting one byte out of node 0's name absorbs the adjacent
// fixed-width parent/R/C fields. With per-name length mixing their
// fingerprints must differ.
func TestFingerprintNameBoundary(t *testing.T) {
	build := func(name0 string, r0, c0 float64, name1 string) *Tree {
		b := NewBuilder()
		b.MustRoot(name0, r0, c0)
		b.MustRoot(name1, 1, 1e-12)
		tree, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return tree
	}
	x := build("a\x00", math.Float64frombits(0x0010000000000001), 0, "c")
	y := build("a", math.Float64frombits(0x1000000000000100), 0, "\x00c")
	if x.Fingerprint() == y.Fingerprint() {
		t.Fatalf("distinct circuits share fingerprint %x (name-boundary collision)", x.Fingerprint())
	}
	// The classic no-separator pair must differ too.
	p := build("ab", 2, 1e-12, "c")
	q := build("a", 2, 1e-12, "bc")
	if p.Fingerprint() == q.Fingerprint() {
		t.Fatal("adjacent-name split pair collides")
	}
}

// Fingerprint stays sensitive to every component and stable across
// identical rebuilds.
func TestFingerprintSensitivity(t *testing.T) {
	mk := func() *Tree { return randomTestTree(3, 30) }
	a, b := mk(), mk()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical circuits must share a fingerprint")
	}
	fp := a.Fingerprint()
	if err := a.SetR(5, a.R(5)*1.0000001); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == fp {
		t.Fatal("SetR did not change the fingerprint")
	}
}

func TestRootsCached(t *testing.T) {
	b := NewBuilder()
	r1 := b.MustRoot("r1", 1, 1e-15)
	b.MustAttach(r1, "k", 1, 1e-15)
	b.MustRoot("r2", 1, 1e-15)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2}
	got := tree.Roots()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Roots() = %v, want %v", got, want)
	}
	// Same backing array on repeat calls (cached, not rescanned), and
	// clones carry their own consistent copy.
	if &tree.Roots()[0] != &got[0] {
		t.Fatal("Roots() is not cached")
	}
	cl := tree.Clone()
	cr := cl.Roots()
	if len(cr) != 2 || cr[0] != 0 || cr[1] != 2 {
		t.Fatalf("clone Roots() = %v", cr)
	}
	if &cr[0] == &got[0] {
		t.Fatal("clone shares the original's roots slice")
	}
}
