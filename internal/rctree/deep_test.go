package rctree

import (
	"fmt"
	"testing"
)

// chainTree builds an n-node single chain (degenerate depth: n levels
// of width 1).
func chainTree(tb testing.TB, n int) *Tree {
	tb.Helper()
	b := NewBuilder()
	prev, err := b.Root("n0", 1, 1e-15)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 1; i < n; i++ {
		prev, err = b.Attach(prev, fmt.Sprintf("n%d", i), 1, 1e-15)
		if err != nil {
			tb.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// starTree builds a hub with n leaves (degenerate width: one level of
// n nodes).
func starTree(tb testing.TB, n int) *Tree {
	tb.Helper()
	b := NewBuilder()
	hub, err := b.Root("hub", 1, 1e-15)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := b.Attach(hub, fmt.Sprintf("leaf%d", i), 2, 2e-15); err != nil {
			tb.Fatal(err)
		}
	}
	t, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

// Compile must survive the two degenerate extremes — a chain a million
// levels deep and a star with one level a hundred thousand nodes wide —
// and the forced level-parallel schedule must stay bit-identical to the
// serial sweep on both.
func TestCompileDegenerateExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-topology stress test")
	}
	const (
		chainN = 1_000_000
		starN  = 100_000
	)
	for _, tc := range []struct {
		name     string
		tree     *Tree
		levels   int
		maxWidth int
	}{
		{"chain1M", chainTree(t, chainN), chainN, 1},
		{"star100k", starTree(t, starN), 2, starN},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cp := Compile(tc.tree)
			n := tc.tree.N()
			if cp.N() != n {
				t.Fatalf("N = %d, want %d", cp.N(), n)
			}
			if got := cp.Levels(); got != tc.levels {
				t.Fatalf("Levels = %d, want %d", got, tc.levels)
			}
			if got := cp.MaxLevelWidth(); got != tc.maxWidth {
				t.Fatalf("MaxLevelWidth = %d, want %d", got, tc.maxWidth)
			}
			for i := 0; i < n; i++ {
				if p := cp.Parent[i]; p != Source && int(p) >= i {
					t.Fatalf("compiled node %d has parent %d (not topological)", i, p)
				}
				if cp.ToUser[cp.FromUser[i]] != int32(i) {
					t.Fatalf("permutation not a bijection at %d", i)
				}
			}

			// Downstream capacitance via both schedules, bit-identical.
			run := func(parallel bool) []float64 {
				down := make([]float64, n)
				cp.EachLevelUp(parallel, func(lo, hi int) {
					for i := hi - 1; i >= lo; i-- {
						d := cp.C[i]
						for ch := cp.ChildStart[i]; ch < cp.ChildStart[i+1]; ch++ {
							d += down[ch]
						}
						down[i] = d
					}
				})
				return down
			}
			serial, par := run(false), run(true)
			for i := range serial {
				if serial[i] != par[i] {
					t.Fatalf("down[%d]: serial %v != parallel %v", i, serial[i], par[i])
				}
			}
			// Sanity anchor: the root sees every capacitor exactly once.
			rootUser := tc.tree.Roots()[0]
			wantRoot := 0.0
			for i := 0; i < n; i++ {
				wantRoot += tc.tree.C(i)
			}
			got := serial[cp.FromUser[rootUser]]
			if diff := got - wantRoot; diff > 1e-9*wantRoot || diff < -1e-9*wantRoot {
				t.Fatalf("root downstream C = %v, want ~%v", got, wantRoot)
			}
		})
	}
}
