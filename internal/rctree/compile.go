package rctree

import (
	"runtime"
	"sync"
)

// Compiled is a structure-of-arrays execution plan for a Tree: the
// nodes renumbered into breadth-first (level) order with all per-node
// data in contiguous slices. It is the layout every hot kernel in this
// repository runs on — the Tree itself stays the friendly, name-indexed
// construction API, while the Compiled form is what the traversals,
// moment recurrences, and transient solver iterate over.
//
// The BFS renumbering gives three properties at once:
//
//   - Topological order: Parent[i] < i for every non-root node, so an
//     ascending sweep 0..N-1 is a valid pre-order (parents before
//     children) and a descending sweep N-1..0 is a valid post-order —
//     no permutation indirection in either direction.
//   - Contiguous children: when a node is dequeued its children are
//     enqueued together, so the children of node i are exactly the
//     index range [ChildStart[i], ChildStart[i+1]) — child iteration
//     is a range loop over consecutive integers, and "gather from
//     children" reads consecutive memory.
//   - Contiguous levels: all nodes at depth d+1 occupy the index range
//     [LevelStart[d], LevelStart[d+1]). Nodes within a level never
//     depend on each other in an upward (children-first) or downward
//     (parents-first) pass, so a level is a unit of parallelism.
//
// A Compiled plan snapshots the element values R and C. Like a cached
// Fingerprint, it is invalidated by SetR/SetC: Compile tracks the
// tree's modification generation and transparently rebuilds when the
// snapshot is stale, so callers may simply call Compile(t) again (or
// hold the plan only while they are not mutating the tree).
//
// All exported slices are read-only: kernels must never write to them.
type Compiled struct {
	gen uint64 // Tree modification generation this plan snapshots

	// Parent[i] is the compiled index of node i's parent, or Source.
	Parent []int32
	// R[i] and C[i] are the element values, in compiled order.
	R, C []float64
	// ChildStart has length N+1; the children of compiled node i are
	// the compiled indices ChildStart[i] <= ch < ChildStart[i+1].
	// (BFS numbering makes every child block contiguous; the blocks
	// are concatenated in parent order starting at the first non-root
	// node, so no separate child-index array is needed.)
	ChildStart []int32
	// ToUser[i] is the Tree (user) index of compiled node i; FromUser
	// is the inverse permutation.
	ToUser, FromUser []int32
	// LevelStart has length L+1 for L depth levels; level l (nodes at
	// depth l+1, i.e. l resistors below a root's resistor) occupies
	// compiled indices [LevelStart[l], LevelStart[l+1]).
	LevelStart []int32
}

// N returns the node count.
func (c *Compiled) N() int { return len(c.Parent) }

// Levels returns the number of depth levels (the tree height).
func (c *Compiled) Levels() int { return len(c.LevelStart) - 1 }

// MaxLevelWidth returns the widest level's node count.
func (c *Compiled) MaxLevelWidth() int {
	w := 0
	for l := 0; l < c.Levels(); l++ {
		if lw := int(c.LevelStart[l+1] - c.LevelStart[l]); lw > w {
			w = lw
		}
	}
	return w
}

// Parallel configuration: level-scheduled goroutine parallelism only
// pays off when there is enough work per level to amortize the
// scheduling, and small nets must not regress, so kernels consult
// ParallelOK before fanning out.
const (
	// MinParallelNodes is the node count below which every kernel
	// stays serial.
	MinParallelNodes = 16384
	// MinParallelWidth is the minimum average level width (nodes per
	// level) for the level schedule to be worth running in parallel: a
	// long chain has one node per level and must stay serial.
	MinParallelWidth = 64
	// minChunk is the smallest per-goroutine slice of one level.
	minChunk = 2048
)

// ParallelOK reports whether the default heuristic would run parallel
// level-scheduled kernels on this plan: the tree is large, its levels
// are wide on average, and more than one CPU is available.
func (c *Compiled) ParallelOK() bool {
	n := c.N()
	return n >= MinParallelNodes &&
		n/c.Levels() >= MinParallelWidth &&
		runtime.GOMAXPROCS(0) > 1
}

// EachLevelUp invokes fn over disjoint compiled-index ranges covering
// all nodes, children strictly before parents. fn must process its
// range [lo, hi) in DESCENDING index order and may only read values it
// wrote for indices > the one being processed (gather form). With
// parallel=false fn is called once with the full range; with
// parallel=true each level is split across goroutines, deepest level
// first, with a barrier between levels. Gather-form kernels produce
// bit-identical results on both paths.
func (c *Compiled) EachLevelUp(parallel bool, fn func(lo, hi int)) {
	if !parallel {
		fn(0, c.N())
		return
	}
	for l := c.Levels() - 1; l >= 0; l-- {
		c.runLevel(int(c.LevelStart[l]), int(c.LevelStart[l+1]), fn)
	}
}

// EachLevelDown is the downward mirror of EachLevelUp: parents
// strictly before children, fn processes its range in ASCENDING order
// and may only read values written for indices < the one in hand.
func (c *Compiled) EachLevelDown(parallel bool, fn func(lo, hi int)) {
	if !parallel {
		fn(0, c.N())
		return
	}
	for l := 0; l < c.Levels(); l++ {
		c.runLevel(int(c.LevelStart[l]), int(c.LevelStart[l+1]), fn)
	}
}

// runLevel executes fn over [lo, hi) split into chunks of at least
// minChunk across at most GOMAXPROCS goroutines.
func (c *Compiled) runLevel(lo, hi int, fn func(lo, hi int)) {
	width := hi - lo
	if width <= minChunk {
		fn(lo, hi)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if max := (width + minChunk - 1) / minChunk; workers > max {
		workers = max
	}
	chunk := (width + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		clo := lo + w*chunk
		chi := clo + chunk
		if chi > hi {
			chi = hi
		}
		if clo >= chi {
			break
		}
		wg.Add(1)
		go func(clo, chi int) {
			defer wg.Done()
			fn(clo, chi)
		}(clo, chi)
	}
	wg.Wait()
}

// Compile returns the structure-of-arrays execution plan for t,
// building it on first use and caching it on the tree. The cached plan
// is reused until SetR/SetC bumps the tree's modification generation,
// after which the next Compile call rebuilds it. Compile is safe for
// concurrent use (concurrent first calls may both build; one result
// wins the cache, both are correct).
func Compile(t *Tree) *Compiled {
	gen := t.gen.Load()
	if c := t.compiled.Load(); c != nil && c.gen == gen {
		return c
	}
	c := compile(t, gen)
	t.compiled.Store(c)
	return c
}

func compile(t *Tree, gen uint64) *Compiled {
	n := len(t.nodes)
	c := &Compiled{
		gen:        gen,
		Parent:     make([]int32, n),
		R:          make([]float64, n),
		C:          make([]float64, n),
		ChildStart: make([]int32, n+1),
		ToUser:     make([]int32, 0, n),
		FromUser:   make([]int32, n),
		LevelStart: make([]int32, 1, 16),
	}
	// BFS from the roots: ToUser doubles as the queue (nodes are
	// appended in dequeue-discovery order, which is exactly the
	// compiled numbering).
	for u := range t.nodes {
		if t.nodes[u].parent == Source {
			c.FromUser[u] = int32(len(c.ToUser))
			c.ToUser = append(c.ToUser, int32(u))
		}
	}
	head := 0
	levelEnd := len(c.ToUser)
	for head < n {
		if head == levelEnd {
			panic("rctree: Compile: unreachable nodes (corrupt tree)")
		}
		for head < levelEnd {
			u := int(c.ToUser[head])
			for _, ch := range t.nodes[u].children {
				c.FromUser[ch] = int32(len(c.ToUser))
				c.ToUser = append(c.ToUser, int32(ch))
			}
			head++
		}
		c.LevelStart = append(c.LevelStart, int32(levelEnd))
		levelEnd = len(c.ToUser)
	}
	for i := 0; i < n; i++ {
		u := int(c.ToUser[i])
		nd := &t.nodes[u]
		c.R[i] = nd.r
		c.C[i] = nd.c
		if nd.parent == Source {
			c.Parent[i] = Source
		} else {
			c.Parent[i] = c.FromUser[nd.parent]
		}
		c.ChildStart[i+1] = c.ChildStart[i] + int32(len(nd.children))
	}
	// ChildStart currently holds cumulative child counts; shift by the
	// root count so blocks address compiled indices directly: the
	// first child block begins right after the roots.
	rootCount := c.LevelStart[1]
	for i := range c.ChildStart {
		c.ChildStart[i] += rootCount
	}
	return c
}
