package rctree

import (
	"math"
	"strings"
	"testing"
)

// buildChain constructs a chain of n nodes with uniform r, c.
func buildChain(t *testing.T, n int, r, c float64) *Tree {
	t.Helper()
	b := NewBuilder()
	prev := b.MustRoot("n1", r, c)
	for i := 2; i <= n; i++ {
		prev = b.MustAttach(prev, "", r, c)
	}
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

// buildY constructs the small Y-tree used across the package tests:
//
//	source -R1- a(C) -R2- b(C) -R3- c(C)
//	                 \-R4- d(C)
func buildY(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	a := b.MustRoot("a", 100, 1e-12)
	bb := b.MustAttach(a, "b", 200, 2e-12)
	b.MustAttach(bb, "c", 300, 3e-12)
	b.MustAttach(a, "d", 400, 4e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tree
}

func TestBuilderBasics(t *testing.T) {
	tree := buildY(t)
	if got := tree.N(); got != 4 {
		t.Fatalf("N = %d, want 4", got)
	}
	a := tree.MustIndex("a")
	if tree.Parent(a) != Source {
		t.Errorf("parent(a) = %d, want Source", tree.Parent(a))
	}
	c := tree.MustIndex("c")
	if tree.Parent(c) != tree.MustIndex("b") {
		t.Errorf("parent(c) wrong")
	}
	if tree.Depth(c) != 3 {
		t.Errorf("depth(c) = %d, want 3", tree.Depth(c))
	}
	if got := len(tree.Children(a)); got != 2 {
		t.Errorf("children(a) = %d, want 2", got)
	}
	if _, ok := tree.Index("zz"); ok {
		t.Errorf("Index(zz) should not exist")
	}
}

func TestBuilderAutoNames(t *testing.T) {
	b := NewBuilder()
	r := b.MustRoot("", 1, 1e-12)
	b.MustAttach(r, "", 1, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tree.Name(0) != "n1" || tree.Name(1) != "n2" {
		t.Errorf("auto names = %q, %q; want n1, n2", tree.Name(0), tree.Name(1))
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"duplicate name", func(b *Builder) {
			b.Root("x", 1, 1e-12)
			b.Root("x", 1, 1e-12)
		}},
		{"zero resistance", func(b *Builder) { b.Root("x", 0, 1e-12) }},
		{"negative resistance", func(b *Builder) { b.Root("x", -5, 1e-12) }},
		{"NaN resistance", func(b *Builder) { b.Root("x", math.NaN(), 1e-12) }},
		{"inf resistance", func(b *Builder) { b.Root("x", math.Inf(1), 1e-12) }},
		{"negative capacitance", func(b *Builder) { b.Root("x", 1, -1e-12) }},
		{"NaN capacitance", func(b *Builder) { b.Root("x", 1, math.NaN()) }},
		{"bad parent index", func(b *Builder) { b.Attach(5, "x", 1, 1e-12) }},
		{"empty", func(b *Builder) {}},
		{"all zero caps", func(b *Builder) { b.Root("x", 1, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.f(b)
			if _, err := b.Build(); err == nil {
				t.Errorf("Build succeeded, want error")
			}
		})
	}
}

func TestBuilderFirstErrorSticks(t *testing.T) {
	b := NewBuilder()
	b.Root("x", -1, 1e-12) // first error
	b.Root("x", 1, 1e-12)  // would be a duplicate-name error
	if err := b.Err(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("Err() = %v, want the first (resistance) error", err)
	}
}

func TestPathResistance(t *testing.T) {
	tree := buildY(t)
	cases := []struct {
		node string
		want float64
	}{
		{"a", 100}, {"b", 300}, {"c", 600}, {"d", 500},
	}
	for _, tc := range cases {
		if got := tree.PathResistance(tree.MustIndex(tc.node)); got != tc.want {
			t.Errorf("PathResistance(%s) = %v, want %v", tc.node, got, tc.want)
		}
	}
}

func TestSharedPathResistance(t *testing.T) {
	tree := buildY(t)
	a, b2, c, d := tree.MustIndex("a"), tree.MustIndex("b"), tree.MustIndex("c"), tree.MustIndex("d")
	cases := []struct {
		i, k int
		want float64
	}{
		{a, a, 100},
		{c, c, 600},
		{c, b2, 300},
		{b2, c, 300},
		{c, d, 100}, // only share R1
		{d, c, 100},
		{a, c, 100},
		{b2, d, 100},
	}
	for _, tc := range cases {
		if got := tree.SharedPathResistance(tc.i, tc.k); got != tc.want {
			t.Errorf("SharedPathResistance(%s,%s) = %v, want %v",
				tree.Name(tc.i), tree.Name(tc.k), got, tc.want)
		}
	}
}

func TestSharedPathResistanceDisjointRoots(t *testing.T) {
	b := NewBuilder()
	r1 := b.MustRoot("a", 10, 1e-12)
	r2 := b.MustRoot("b", 20, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := tree.SharedPathResistance(r1, r2); got != 0 {
		t.Errorf("disjoint roots share %v, want 0", got)
	}
	if got := len(tree.Roots()); got != 2 {
		t.Errorf("Roots = %d, want 2", got)
	}
}

func TestDownstreamC(t *testing.T) {
	tree := buildY(t)
	down := tree.DownstreamC()
	get := func(n string) float64 { return down[tree.MustIndex(n)] }
	if got, want := get("a"), 10e-12; math.Abs(got-want) > 1e-24 {
		t.Errorf("down(a) = %v, want %v", got, want)
	}
	if got, want := get("b"), 5e-12; math.Abs(got-want) > 1e-24 {
		t.Errorf("down(b) = %v, want %v", got, want)
	}
	if got, want := get("c"), 3e-12; math.Abs(got-want) > 1e-24 {
		t.Errorf("down(c) = %v, want %v", got, want)
	}
	if got, want := get("d"), 4e-12; math.Abs(got-want) > 1e-24 {
		t.Errorf("down(d) = %v, want %v", got, want)
	}
}

func TestOrders(t *testing.T) {
	tree := buildY(t)
	post := tree.PostOrder()
	pre := tree.PreOrder()
	if len(post) != tree.N() || len(pre) != tree.N() {
		t.Fatalf("order lengths: post=%d pre=%d", len(post), len(pre))
	}
	seen := make(map[int]bool)
	for _, i := range post {
		for _, ch := range tree.Children(i) {
			if !seen[ch] {
				t.Errorf("post-order: node %d before child %d", i, ch)
			}
		}
		seen[i] = true
	}
	seen = make(map[int]bool)
	for _, i := range pre {
		if p := tree.Parent(i); p != Source && !seen[p] {
			t.Errorf("pre-order: node %d before parent %d", i, p)
		}
		seen[i] = true
	}
}

func TestOrdersDeepChain(t *testing.T) {
	// A 200k-deep chain must not overflow the stack during order
	// computation (it is iterative).
	n := 200000
	tree := buildChain(t, n, 1, 1e-15)
	if got := len(tree.PostOrder()); got != n {
		t.Fatalf("post order len = %d, want %d", got, n)
	}
	if tree.Depth(n-1) != n {
		t.Fatalf("depth = %d, want %d", tree.Depth(n-1), n)
	}
}

func TestLeavesAndTotals(t *testing.T) {
	tree := buildY(t)
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Fatalf("leaves = %v, want 2 leaves", leaves)
	}
	if got, want := tree.TotalC(), 10e-12; math.Abs(got-want) > 1e-24 {
		t.Errorf("TotalC = %v, want %v", got, want)
	}
	if got, want := tree.TotalR(), 1000.0; got != want {
		t.Errorf("TotalR = %v, want %v", got, want)
	}
}

func TestSetRSetC(t *testing.T) {
	tree := buildY(t)
	a := tree.MustIndex("a")
	if err := tree.SetR(a, 123); err != nil || tree.R(a) != 123 {
		t.Errorf("SetR: err=%v R=%v", err, tree.R(a))
	}
	if err := tree.SetC(a, 5e-12); err != nil || tree.C(a) != 5e-12 {
		t.Errorf("SetC: err=%v C=%v", err, tree.C(a))
	}
	if err := tree.SetR(a, -1); err == nil {
		t.Errorf("SetR(-1) should fail")
	}
	if err := tree.SetC(a, -1); err == nil {
		t.Errorf("SetC(-1) should fail")
	}
	if err := tree.SetC(a, 0); err != nil {
		t.Errorf("SetC(0) should be allowed: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tree := buildY(t)
	cp := tree.Clone()
	a := tree.MustIndex("a")
	if err := cp.SetR(a, 999); err != nil {
		t.Fatal(err)
	}
	if tree.R(a) == 999 {
		t.Errorf("Clone shares R storage with original")
	}
	if cp.N() != tree.N() || cp.Name(a) != tree.Name(a) {
		t.Errorf("Clone mismatch")
	}
}

func TestValidateCatchesInPlaceDegeneracy(t *testing.T) {
	tree := buildY(t)
	for i := 0; i < tree.N(); i++ {
		if err := tree.SetC(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.Validate(); err == nil {
		t.Errorf("Validate should reject an all-zero-capacitance tree")
	}
}

func TestSubtree(t *testing.T) {
	tree := buildY(t)
	sub, err := tree.Subtree(tree.MustIndex("b"))
	if err != nil {
		t.Fatalf("Subtree: %v", err)
	}
	if sub.N() != 2 {
		t.Fatalf("subtree N = %d, want 2", sub.N())
	}
	bi := sub.MustIndex("b")
	if sub.Parent(bi) != Source || sub.R(bi) != 200 {
		t.Errorf("subtree root wrong: parent=%d R=%v", sub.Parent(bi), sub.R(bi))
	}
	ci := sub.MustIndex("c")
	if sub.Parent(ci) != bi {
		t.Errorf("subtree child link wrong")
	}
}

func TestPathToSource(t *testing.T) {
	tree := buildY(t)
	path := tree.PathToSource(tree.MustIndex("c"))
	want := []string{"c", "b", "a"}
	if len(path) != len(want) {
		t.Fatalf("path len = %d, want %d", len(path), len(want))
	}
	for i, id := range path {
		if tree.Name(id) != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, tree.Name(id), want[i])
		}
	}
}

func TestStringRendering(t *testing.T) {
	tree := buildY(t)
	s := tree.String()
	for _, name := range []string{"a", "b", "c", "d"} {
		if !strings.Contains(s, name+":") {
			t.Errorf("String missing node %q:\n%s", name, s)
		}
	}
	if !strings.Contains(s, "100ohm") || !strings.Contains(s, "1pF") {
		t.Errorf("String missing formatted values:\n%s", s)
	}
}

func TestMustIndexPanics(t *testing.T) {
	tree := buildY(t)
	defer func() {
		if recover() == nil {
			t.Errorf("MustIndex should panic on unknown name")
		}
	}()
	tree.MustIndex("nope")
}

func TestSortedNames(t *testing.T) {
	tree := buildY(t)
	names := tree.SortedNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestFingerprint(t *testing.T) {
	build := func() *Tree {
		b := NewBuilder()
		n1 := b.MustRoot("n1", 100, 1e-12)
		b.MustAttach(n1, "n2", 50, 2e-12)
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := build(), build()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical circuits must share a fingerprint")
	}
	if a.Fingerprint() != a.Clone().Fingerprint() {
		t.Errorf("clone must share the fingerprint")
	}
	// Any element edit must change it.
	c := build()
	if err := c.SetR(0, 101); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Errorf("R edit did not change the fingerprint")
	}
	d := build()
	if err := d.SetC(1, 3e-12); err != nil {
		t.Fatal(err)
	}
	if d.Fingerprint() == a.Fingerprint() {
		t.Errorf("C edit did not change the fingerprint")
	}
	// Different topology with the same element multiset.
	bb := NewBuilder()
	bb.MustRoot("n1", 100, 1e-12)
	bb.MustRoot("n2", 50, 2e-12)
	e, err := bb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if e.Fingerprint() == a.Fingerprint() {
		t.Errorf("different topology must change the fingerprint")
	}
}

func TestSetValuesBulkMutation(t *testing.T) {
	tree := buildY(t)
	n := tree.N()
	r := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		r[i] = tree.R(i) + 1
		c[i] = tree.C(i) * 2
	}
	gen0 := tree.Generation()
	if err := tree.SetValues(r, c); err != nil {
		t.Fatal(err)
	}
	if got := tree.Generation() - gen0; got != 1 {
		t.Errorf("SetValues bumped the generation %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if tree.R(i) != r[i] || tree.C(i) != c[i] {
			t.Fatalf("values not applied at node %d", i)
		}
	}

	// nil slices leave that element kind untouched; both nil is a no-op
	// that must not invalidate anything.
	gen1 := tree.Generation()
	if err := tree.SetValues(nil, nil); err != nil {
		t.Fatal(err)
	}
	if tree.Generation() != gen1 {
		t.Errorf("no-op SetValues must not bump the generation")
	}
	r2 := make([]float64, n)
	for i := range r2 {
		r2[i] = 7
	}
	if err := tree.SetValues(r2, nil); err != nil {
		t.Fatal(err)
	}
	if tree.R(0) != 7 || tree.C(0) != c[0] {
		t.Errorf("r-only SetValues must leave capacitances untouched")
	}

	// Validation is all-or-nothing: one bad value rejects the batch.
	bad := make([]float64, n)
	for i := range bad {
		bad[i] = 1
	}
	bad[n-1] = -1
	genBefore := tree.Generation()
	if err := tree.SetValues(bad, nil); err == nil {
		t.Fatal("negative resistance must fail")
	}
	if tree.Generation() != genBefore || tree.R(0) != 7 {
		t.Errorf("failed SetValues must leave the tree untouched")
	}
	if err := tree.SetValues([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch must fail")
	}
}
