package rctree

import (
	"fmt"
	"strings"
)

// Simplify returns an electrically equivalent tree with every
// zero-capacitance single-child junction merged into its child (series
// resistances add). Extraction tools emit many such junctions (vias,
// segment boundaries); removing them shrinks every downstream analysis
// without changing any node voltage. Node names of surviving nodes are
// preserved. Zero-capacitance leaves are also dropped — no current ever
// flows into them, so they carry the same voltage as their parent.
func (t *Tree) Simplify() (*Tree, error) {
	// keep[i] reports whether node i survives; extraR[i] accumulates the
	// series resistance of merged ancestors, added to i's own R.
	n := t.N()
	drop := make([]bool, n)
	for i := 0; i < n; i++ {
		if t.C(i) == 0 && len(t.Children(i)) <= 1 {
			drop[i] = true
		}
	}
	// Count survivors; a tree that would vanish entirely is degenerate.
	survivors := 0
	for i := 0; i < n; i++ {
		if !drop[i] {
			survivors++
		}
	}
	if survivors == 0 {
		return nil, fmt.Errorf("rctree: Simplify would remove every node (no capacitance anywhere)")
	}

	b := NewBuilder()
	newID := make([]int, n)
	for i := range newID {
		newID[i] = -1
	}
	// Pre-order: parents processed first. For each surviving node, walk
	// up through dropped ancestors, summing their resistances, until a
	// surviving ancestor (or the source) is found.
	for _, i := range t.PreOrder() {
		if drop[i] {
			continue
		}
		r := t.R(i)
		p := t.Parent(i)
		for p != Source && drop[p] {
			r += t.R(p)
			p = t.Parent(p)
		}
		var id int
		var err error
		if p == Source {
			id, err = b.Root(t.Name(i), r, t.C(i))
		} else {
			id, err = b.Attach(newID[p], t.Name(i), r, t.C(i))
		}
		if err != nil {
			return nil, err
		}
		newID[i] = id
	}
	return b.Build()
}

// ScaleValues multiplies every resistance by rFactor and every
// capacitance by cFactor in place — the uniform process-corner
// transform. Factors must be positive and finite, and so must every
// scaled resistance (a huge factor can overflow to +Inf); all products
// are validated before any is applied, so on error the tree is
// unchanged. Unlike a SetR/SetC loop, the whole edit validates once per
// node with no per-call error wrapping and bumps the modification
// generation exactly once, so compiled plans and fingerprints are
// invalidated once per scale instead of 2N times.
func (t *Tree) ScaleValues(rFactor, cFactor float64) error {
	if err := checkR(rFactor); err != nil {
		return fmt.Errorf("rctree: ScaleValues rFactor: %w", err)
	}
	if err := checkR(cFactor); err != nil {
		return fmt.Errorf("rctree: ScaleValues cFactor: %w", err)
	}
	for i := range t.nodes {
		if err := checkR(t.nodes[i].r * rFactor); err != nil {
			return fmt.Errorf("rctree: node %q: %w", t.nodes[i].name, err)
		}
		if err := checkC(t.nodes[i].c * cFactor); err != nil {
			return fmt.Errorf("rctree: node %q: %w", t.nodes[i].name, err)
		}
	}
	for i := range t.nodes {
		t.nodes[i].r *= rFactor
		t.nodes[i].c *= cFactor
	}
	t.gen.Add(1)
	return nil
}

// Scaled returns a clone with every resistance multiplied by rFactor
// and every capacitance by cFactor. Factors must be positive and
// finite. The original tree is untouched.
func (t *Tree) Scaled(rFactor, cFactor float64) (*Tree, error) {
	cp := t.Clone()
	if err := cp.ScaleValues(rFactor, cFactor); err != nil {
		return nil, fmt.Errorf("rctree: Scaled: %w", err)
	}
	return cp, nil
}

// MaxDepth returns the largest resistor count on any source-to-node
// path.
func (t *Tree) MaxDepth() int {
	max := 0
	for i := range t.nodes {
		if d := t.nodes[i].depth; d > max {
			max = d
		}
	}
	return max
}

// MaxFanout returns the largest child count of any node (root fanout
// from the source counts too).
func (t *Tree) MaxFanout() int {
	max := len(t.Roots())
	for i := range t.nodes {
		if f := len(t.nodes[i].children); f > max {
			max = f
		}
	}
	return max
}

// DOT renders the tree in Graphviz dot format: the source as a box,
// nodes labelled with their capacitance, edges with their resistance.
// Useful for eyeballing extracted topologies.
func (t *Tree) DOT(name string) string {
	var sb strings.Builder
	if name == "" {
		name = "rctree"
	}
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  source [shape=box label=\"source\"];\n", name)
	for _, i := range t.PreOrder() {
		fmt.Fprintf(&sb, "  %q [label=\"%s\\n%s\"];\n", t.Name(i), t.Name(i), FormatFarads(t.C(i)))
	}
	for _, i := range t.PreOrder() {
		from := "source"
		if p := t.Parent(i); p != Source {
			from = t.Name(p)
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%s\"];\n", from, t.Name(i), FormatOhms(t.R(i)))
	}
	sb.WriteString("}\n")
	return sb.String()
}
