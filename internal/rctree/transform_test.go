package rctree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// elmoreAt computes T_D by the O(N^2) definition; kept local so the
// transform tests don't depend on higher layers.
func elmoreAt(t *Tree, i int) float64 {
	var td float64
	for k := 0; k < t.N(); k++ {
		td += t.SharedPathResistance(i, k) * t.C(k)
	}
	return td
}

func TestSimplifyMergesJunctions(t *testing.T) {
	// source -10- j1(0) -20- j2(0) -30- a(1p) -40- j3(0, leaf)
	//                             \-50- b(2p)
	b := NewBuilder()
	j1 := b.MustRoot("j1", 10, 0)
	j2 := b.MustAttach(j1, "j2", 20, 0)
	a := b.MustAttach(j2, "a", 30, 1e-12)
	b.MustAttach(j2, "b", 50, 2e-12)
	b.MustAttach(a, "j3", 40, 0)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// j2 has two children -> must be kept even with zero cap; j1 is a
	// single-child junction -> merged; j3 is a zero-cap leaf -> dropped.
	simp, err := tree.Simplify()
	if err != nil {
		t.Fatal(err)
	}
	if simp.N() != 3 {
		t.Fatalf("N = %d, want 3 (j2, a, b):\n%s", simp.N(), simp)
	}
	if _, ok := simp.Index("j1"); ok {
		t.Errorf("j1 should be merged away")
	}
	if _, ok := simp.Index("j3"); ok {
		t.Errorf("j3 should be dropped")
	}
	j2n := simp.MustIndex("j2")
	if simp.R(j2n) != 30 { // 10 + 20
		t.Errorf("merged R = %v, want 30", simp.R(j2n))
	}
	// Elmore delays at surviving nodes unchanged.
	for _, name := range []string{"a", "b"} {
		want := elmoreAt(tree, tree.MustIndex(name))
		got := elmoreAt(simp, simp.MustIndex(name))
		if math.Abs(got-want) > 1e-22 {
			t.Errorf("T_D(%s) changed: %v -> %v", name, want, got)
		}
	}
}

func TestSimplifyNoopOnCleanTree(t *testing.T) {
	tree := buildY(t)
	simp, err := tree.Simplify()
	if err != nil {
		t.Fatal(err)
	}
	if simp.N() != tree.N() {
		t.Errorf("clean tree should be unchanged: %d -> %d", tree.N(), simp.N())
	}
}

func TestSimplifyChainOfJunctions(t *testing.T) {
	// A long run of zero-cap junctions collapses into one resistor.
	b := NewBuilder()
	prev := b.MustRoot("j1", 1, 0)
	for i := 2; i <= 10; i++ {
		prev = b.MustAttach(prev, "", 1, 0)
	}
	b.MustAttach(prev, "load", 1, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	simp, err := tree.Simplify()
	if err != nil {
		t.Fatal(err)
	}
	if simp.N() != 1 {
		t.Fatalf("N = %d, want 1", simp.N())
	}
	load := simp.MustIndex("load")
	if simp.R(load) != 11 {
		t.Errorf("collapsed R = %v, want 11", simp.R(load))
	}
}

func TestSimplifyRejectsAllZero(t *testing.T) {
	// Build a valid tree, zero its caps in place, then simplify.
	tree := buildY(t)
	for i := 0; i < tree.N(); i++ {
		if err := tree.SetC(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tree.Simplify(); err == nil {
		t.Errorf("all-zero-cap tree should fail to simplify")
	}
}

// Property: Simplify preserves the Elmore delay at every surviving node
// and never increases the node count.
func TestSimplifyPreservesElmoreProperty(t *testing.T) {
	f := func(seed int64) bool {
		tree := randomWithJunctions(seed)
		simp, err := tree.Simplify()
		if err != nil {
			return false
		}
		if simp.N() > tree.N() {
			return false
		}
		for i := 0; i < simp.N(); i++ {
			orig, ok := tree.Index(simp.Name(i))
			if !ok {
				return false
			}
			if math.Abs(elmoreAt(simp, i)-elmoreAt(tree, orig)) > 1e-18 {
				return false
			}
		}
		return simp.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// randomWithJunctions builds a small random tree where ~40% of nodes
// carry zero capacitance.
func randomWithJunctions(seed int64) *Tree {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(25)
	b := NewBuilder()
	ids := make([]int, 0, n)
	caps := 0
	for i := 0; i < n; i++ {
		c := 1e-15 * float64(1+rng.Intn(100))
		if rng.Intn(10) < 4 && i < n-1 {
			c = 0
		} else {
			caps++
		}
		if caps == 0 && i == n-1 {
			c = 1e-15 // guarantee at least one capacitor
		}
		r := 1 + float64(rng.Intn(1000))
		if len(ids) == 0 {
			ids = append(ids, mustRoot(b, r, c))
		} else {
			ids = append(ids, mustAttach(b, ids[rng.Intn(len(ids))], r, c))
		}
	}
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

func mustRoot(b *Builder, r, c float64) int          { return b.MustRoot("", r, c) }
func mustAttach(b *Builder, p int, r, c float64) int { return b.MustAttach(p, "", r, c) }

func TestScaled(t *testing.T) {
	tree := buildY(t)
	s, err := tree.Scaled(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tree.N(); i++ {
		if s.R(i) != 2*tree.R(i) || s.C(i) != 3*tree.C(i) {
			t.Fatalf("scaling wrong at node %d", i)
		}
	}
	// Elmore scales by the product of the factors.
	for i := 0; i < tree.N(); i++ {
		if math.Abs(elmoreAt(s, i)-6*elmoreAt(tree, i)) > 1e-18 {
			t.Errorf("T_D should scale by 6 at node %d", i)
		}
	}
	if _, err := tree.Scaled(0, 1); err == nil {
		t.Errorf("zero factor should fail")
	}
	if _, err := tree.Scaled(1, math.NaN()); err == nil {
		t.Errorf("NaN factor should fail")
	}
}

// TestScaleValuesBulkSemantics is the regression test for the bulk
// scaling path: one generation bump for the whole edit (the per-node
// SetR/SetC loop it replaced paid 2N invalidations), values identical
// to the per-node loop, and all-or-nothing application when a product
// overflows validation.
func TestScaleValuesBulkSemantics(t *testing.T) {
	tree := buildY(t)
	perNode := tree.Clone()
	for i := 0; i < perNode.N(); i++ {
		if err := perNode.SetR(i, perNode.R(i)*2); err != nil {
			t.Fatal(err)
		}
		if err := perNode.SetC(i, perNode.C(i)*3); err != nil {
			t.Fatal(err)
		}
	}

	bulk := tree.Clone()
	gen0 := bulk.Generation()
	if err := bulk.ScaleValues(2, 3); err != nil {
		t.Fatal(err)
	}
	if got := bulk.Generation() - gen0; got != 1 {
		t.Errorf("ScaleValues bumped the generation %d times, want exactly 1", got)
	}
	if pg := perNode.Generation(); pg != uint64(2*perNode.N()) {
		t.Fatalf("per-node loop generation = %d, want %d", pg, 2*perNode.N())
	}
	for i := 0; i < tree.N(); i++ {
		if bulk.R(i) != perNode.R(i) || bulk.C(i) != perNode.C(i) {
			t.Fatalf("bulk and per-node scaling disagree at node %d", i)
		}
	}

	// All-or-nothing: a factor that overflows one resistance must leave
	// every value (and the generation) untouched.
	huge := tree.Clone()
	if err := huge.SetR(0, math.MaxFloat64/2); err != nil {
		t.Fatal(err)
	}
	genBefore := huge.Generation()
	if err := huge.ScaleValues(4, 1); err == nil {
		t.Fatal("overflowing scale should fail")
	}
	if huge.Generation() != genBefore {
		t.Errorf("failed ScaleValues must not bump the generation")
	}
	if huge.R(0) != math.MaxFloat64/2 || huge.R(1) != tree.R(1) {
		t.Errorf("failed ScaleValues must not change any value")
	}
}

func TestDepthAndFanoutStats(t *testing.T) {
	tree := buildY(t)
	if tree.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", tree.MaxDepth())
	}
	if tree.MaxFanout() != 2 {
		t.Errorf("MaxFanout = %d, want 2", tree.MaxFanout())
	}
	b := NewBuilder()
	b.MustRoot("a", 1, 1e-15)
	b.MustRoot("b", 1, 1e-15)
	b.MustRoot("c", 1, 1e-15)
	multi, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if multi.MaxFanout() != 3 {
		t.Errorf("root fanout should count: %d", multi.MaxFanout())
	}
}

func TestDOT(t *testing.T) {
	tree := buildY(t)
	dot := tree.DOT("demo")
	for _, want := range []string{"digraph \"demo\"", "source [shape=box", "\"a\" -> \"b\"", "100ohm", "1pF", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.Contains(tree.DOT(""), "digraph \"rctree\"") {
		t.Errorf("default name missing")
	}
}
