// Package rctree models RC trees: resistor-capacitor circuits in which
// every node has a capacitor to ground, no capacitor couples two
// non-ground nodes, and no resistor connects to ground. Such circuits are
// the canonical model for digital gate + interconnect delay estimation
// (Penfield-Rubinstein 1981; Gupta, Tutuianu, Pileggi 1995/97).
//
// A Tree is driven by a single ideal voltage source (the "input" or
// "source" node). Every tree node i carries a resistance R(i) to its
// parent (toward the source) and a capacitance C(i) to ground. A node
// whose parent is the source is a root node; a Tree may have several
// root nodes (several resistors leaving the source), which still forms
// an RC tree in the classical sense.
package rctree

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Source is the pseudo-index used for the voltage-source node. It appears
// as the Parent of root nodes and is never a valid node index.
const Source = -1

// node is the internal per-node record.
type node struct {
	name     string
	parent   int // node index, or Source
	r        float64
	c        float64
	children []int
	depth    int // number of resistors between this node and the source
}

// Tree is an immutable-topology RC tree. Node indices are dense in
// [0, N()) and are assigned in the order nodes were added to the Builder.
// Element values (R, C) may be updated in place via SetR/SetC, which is
// useful for sizing loops; topology cannot change after Build.
type Tree struct {
	nodes  []node
	byName map[string]int
	post   []int // cached post-order
	pre    []int // cached pre-order (parents before children)
	roots  []int // cached root indices (parent == Source), in index order

	// gen counts element-value mutations (SetR/SetC); compiled caches
	// the current structure-of-arrays plan for that generation. Both
	// are atomic so concurrent readers (Compile from parallel workers)
	// never race with each other; mutating a tree concurrently with
	// readers remains unsupported, as documented on SetR/SetC.
	gen      atomic.Uint64
	compiled atomic.Pointer[Compiled]
}

// N returns the number of nodes in the tree (excluding the source).
func (t *Tree) N() int { return len(t.nodes) }

// Name returns the user-assigned name of node i.
func (t *Tree) Name(i int) string { return t.nodes[i].name }

// R returns the resistance (ohms) between node i and its parent.
func (t *Tree) R(i int) float64 { return t.nodes[i].r }

// C returns the capacitance (farads) from node i to ground.
func (t *Tree) C(i int) float64 { return t.nodes[i].c }

// Parent returns the parent index of node i, or Source for a root node.
func (t *Tree) Parent(i int) int { return t.nodes[i].parent }

// Depth returns the number of resistors on the path from the source to
// node i. Root nodes have depth 1.
func (t *Tree) Depth(i int) int { return t.nodes[i].depth }

// Children returns the child indices of node i. The returned slice is
// owned by the tree and must not be modified.
func (t *Tree) Children(i int) []int { return t.nodes[i].children }

// Roots returns the indices of all nodes attached directly to the
// source. The slice is computed once at Build time and owned by the
// tree; it must not be modified.
func (t *Tree) Roots() []int { return t.roots }

// Leaves returns the indices of all childless nodes, in index order.
func (t *Tree) Leaves() []int {
	var leaves []int
	for i := range t.nodes {
		if len(t.nodes[i].children) == 0 {
			leaves = append(leaves, i)
		}
	}
	return leaves
}

// Index returns the index of the node with the given name.
func (t *Tree) Index(name string) (int, bool) {
	i, ok := t.byName[name]
	return i, ok
}

// MustIndex is like Index but panics if the name is unknown. It is meant
// for tests and examples operating on hand-built circuits.
func (t *Tree) MustIndex(name string) int {
	i, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("rctree: no node named %q", name))
	}
	return i
}

// SetR updates the resistance of node i. It returns an error if r is not
// a positive finite value. SetR invalidates cached derived artifacts:
// fingerprints computed earlier are stale, and compiled execution plans
// (Compile) rebuild on next use. See Fingerprint for the full
// mutation/caching contract. For bulk edits prefer SetValues or
// ScaleValues, which validate and invalidate once instead of per node.
func (t *Tree) SetR(i int, r float64) error {
	if err := checkR(r); err != nil {
		return fmt.Errorf("rctree: node %q: %w", t.nodes[i].name, err)
	}
	t.nodes[i].r = r
	t.gen.Add(1)
	return nil
}

// SetC updates the grounded capacitance of node i. It returns an error if
// c is negative or not finite. A zero capacitance is allowed (a pure
// resistive junction), though at least one node in the tree must carry
// nonzero capacitance for the circuit to have dynamics. Like SetR it
// invalidates cached fingerprints and compiled plans; see Fingerprint
// for the full mutation/caching contract, and SetValues/ScaleValues for
// bulk edits.
func (t *Tree) SetC(i int, c float64) error {
	if err := checkC(c); err != nil {
		return fmt.Errorf("rctree: node %q: %w", t.nodes[i].name, err)
	}
	t.nodes[i].c = c
	t.gen.Add(1)
	return nil
}

// SetValues replaces every element value in one bulk mutation: r and c,
// when non-nil, must have length N() and carry the new resistances and
// capacitances in node-index order. All values are validated before any
// is applied — on error the tree is unchanged — and the modification
// generation is bumped exactly once, so derived artifacts (compiled
// plans, fingerprints) are invalidated once per bulk edit instead of
// once per node. A nil slice leaves that element kind untouched.
func (t *Tree) SetValues(r, c []float64) error {
	if r != nil && len(r) != len(t.nodes) {
		return fmt.Errorf("rctree: SetValues: got %d resistances for %d nodes", len(r), len(t.nodes))
	}
	if c != nil && len(c) != len(t.nodes) {
		return fmt.Errorf("rctree: SetValues: got %d capacitances for %d nodes", len(c), len(t.nodes))
	}
	if r == nil && c == nil {
		return nil
	}
	for i := range t.nodes {
		if r != nil {
			if err := checkR(r[i]); err != nil {
				return fmt.Errorf("rctree: node %q: %w", t.nodes[i].name, err)
			}
		}
		if c != nil {
			if err := checkC(c[i]); err != nil {
				return fmt.Errorf("rctree: node %q: %w", t.nodes[i].name, err)
			}
		}
	}
	for i := range t.nodes {
		if r != nil {
			t.nodes[i].r = r[i]
		}
		if c != nil {
			t.nodes[i].c = c[i]
		}
	}
	t.gen.Add(1)
	return nil
}

// Generation returns the tree's element-value modification count: it
// starts at zero and increases by one for every SetR/SetC call and by
// one per SetValues/ScaleValues bulk edit. Derived-artifact caches
// (compiled plans, incremental engines) compare generations to detect
// that a snapshot is stale.
func (t *Tree) Generation() uint64 { return t.gen.Load() }

// Clone returns a deep copy of the tree. The copy shares no mutable state
// with the original, so SetR/SetC on one does not affect the other.
func (t *Tree) Clone() *Tree {
	cp := &Tree{
		nodes:  make([]node, len(t.nodes)),
		byName: make(map[string]int, len(t.byName)),
		post:   append([]int(nil), t.post...),
		pre:    append([]int(nil), t.pre...),
		roots:  append([]int(nil), t.roots...),
	}
	copy(cp.nodes, t.nodes)
	for i := range cp.nodes {
		cp.nodes[i].children = append([]int(nil), t.nodes[i].children...)
	}
	for k, v := range t.byName {
		cp.byName[k] = v
	}
	return cp
}

// TotalC returns the sum of all grounded capacitances in the tree.
func (t *Tree) TotalC() float64 {
	var sum float64
	for i := range t.nodes {
		sum += t.nodes[i].c
	}
	return sum
}

// TotalR returns the sum of all resistances in the tree.
func (t *Tree) TotalR() float64 {
	var sum float64
	for i := range t.nodes {
		sum += t.nodes[i].r
	}
	return sum
}

// PostOrder returns node indices in post-order: every node appears after
// all of its descendants. The slice is owned by the tree.
func (t *Tree) PostOrder() []int { return t.post }

// PreOrder returns node indices in pre-order: every node appears before
// all of its descendants. The slice is owned by the tree.
func (t *Tree) PreOrder() []int { return t.pre }

// PathToSource returns the node indices on the path from node i up to
// (but excluding) the source, starting with i itself.
func (t *Tree) PathToSource(i int) []int {
	var path []int
	for j := i; j != Source; j = t.nodes[j].parent {
		path = append(path, j)
	}
	return path
}

// PathResistance returns R_ii: the total resistance on the unique path
// between the source and node i.
func (t *Tree) PathResistance(i int) float64 {
	var sum float64
	for j := i; j != Source; j = t.nodes[j].parent {
		sum += t.nodes[j].r
	}
	return sum
}

// SharedPathResistance returns R_ki: the resistance of the portion of the
// source-to-i path that is common with the source-to-k path. This is the
// kernel of the Elmore delay sum T_Di = sum_k R_ki * C_k.
func (t *Tree) SharedPathResistance(i, k int) float64 {
	// Walk both nodes up to their common ancestor, then sum the
	// resistance from the ancestor to the source.
	a, b := i, k
	for t.nodes[a].depth > t.nodes[b].depth {
		a = t.nodes[a].parent
	}
	for t.nodes[b].depth > t.nodes[a].depth {
		b = t.nodes[b].parent
	}
	for a != b {
		if a == Source || b == Source {
			return 0 // different roots: no shared resistance
		}
		a = t.nodes[a].parent
		b = t.nodes[b].parent
	}
	if a == Source {
		return 0
	}
	return t.PathResistance(a)
}

// DownstreamC returns, for every node i, the total capacitance of the
// subtree rooted at i (including C(i) itself). This is the one-pass
// upward traversal used by the O(N) Elmore computation; it runs on the
// compiled structure-of-arrays plan, level-parallel on large bushy
// trees.
func (t *Tree) DownstreamC() []float64 {
	cp := Compile(t)
	out := make([]float64, len(t.nodes))
	n := cp.N()
	down := make([]float64, n)
	if !cp.ParallelOK() {
		// Plain loop: the closure form below escapes to the heap, and
		// small nets should not pay that allocation.
		for i := n - 1; i >= 0; i-- {
			d := cp.C[i]
			for ch := cp.ChildStart[i]; ch < cp.ChildStart[i+1]; ch++ {
				d += down[ch]
			}
			down[i] = d
			out[cp.ToUser[i]] = d
		}
		return out
	}
	cp.EachLevelUp(true, func(lo, hi int) {
		for i := hi - 1; i >= lo; i-- {
			d := cp.C[i]
			for ch := cp.ChildStart[i]; ch < cp.ChildStart[i+1]; ch++ {
				d += down[ch]
			}
			down[i] = d
			out[cp.ToUser[i]] = d
		}
	})
	return out
}

// Subtree returns a new Tree consisting of node i and all its
// descendants, with node i as the sole root (its resistance preserved as
// the root resistance). Node names are preserved.
func (t *Tree) Subtree(i int) (*Tree, error) {
	b := NewBuilder()
	var add func(j, parent int) error
	add = func(j, parent int) error {
		var id int
		var err error
		if parent == Source {
			id, err = b.Root(t.nodes[j].name, t.nodes[j].r, t.nodes[j].c)
		} else {
			id, err = b.Attach(parent, t.nodes[j].name, t.nodes[j].r, t.nodes[j].c)
		}
		if err != nil {
			return err
		}
		for _, ch := range t.nodes[j].children {
			if err := add(ch, id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := add(i, Source); err != nil {
		return nil, err
	}
	return b.Build()
}

// String renders the tree topology as an indented outline, one node per
// line, with resistances and capacitances in engineering notation.
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(i, indent int)
	walk = func(i, indent int) {
		fmt.Fprintf(&sb, "%s%s: R=%s C=%s\n",
			strings.Repeat("  ", indent), t.nodes[i].name,
			FormatOhms(t.nodes[i].r), FormatFarads(t.nodes[i].c))
		for _, ch := range t.nodes[i].children {
			walk(ch, indent+1)
		}
	}
	for _, r := range t.Roots() {
		walk(r, 0)
	}
	return sb.String()
}

// Names returns all node names in index order.
func (t *Tree) Names() []string {
	names := make([]string, len(t.nodes))
	for i := range t.nodes {
		names[i] = t.nodes[i].name
	}
	return names
}

// Validate re-checks the structural invariants of the tree: positive
// finite resistances, nonnegative finite capacitances, at least one node
// with nonzero capacitance, consistent parent/child links and depths.
// Build always returns a valid tree; Validate exists to catch invalid
// in-place edits (for example SetC-ing every capacitor to zero).
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return fmt.Errorf("rctree: empty tree")
	}
	anyC := false
	for i := range t.nodes {
		n := &t.nodes[i]
		if err := checkR(n.r); err != nil {
			return fmt.Errorf("rctree: node %q: %w", n.name, err)
		}
		if err := checkC(n.c); err != nil {
			return fmt.Errorf("rctree: node %q: %w", n.name, err)
		}
		if n.c > 0 {
			anyC = true
		}
		if n.parent != Source {
			if n.parent < 0 || n.parent >= len(t.nodes) {
				return fmt.Errorf("rctree: node %q: parent index %d out of range", n.name, n.parent)
			}
			if t.nodes[n.parent].depth+1 != n.depth {
				return fmt.Errorf("rctree: node %q: inconsistent depth", n.name)
			}
		} else if n.depth != 1 {
			return fmt.Errorf("rctree: root node %q: depth %d != 1", n.name, n.depth)
		}
		for _, ch := range n.children {
			if ch < 0 || ch >= len(t.nodes) || t.nodes[ch].parent != i {
				return fmt.Errorf("rctree: node %q: inconsistent child link", n.name)
			}
		}
	}
	if !anyC {
		return fmt.Errorf("rctree: tree has no capacitance (all C are zero)")
	}
	return nil
}

// ValidateR reports whether r is a legal element resistance (positive
// and finite) — the same check SetR and Build apply, exported so
// engines that shadow a tree's values (moments.Incremental) can enforce
// the identical contract without round-tripping through the tree.
func ValidateR(r float64) error { return checkR(r) }

// ValidateC is ValidateR for capacitances: nonnegative and finite.
func ValidateC(c float64) error { return checkC(c) }

func checkR(r float64) error {
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return fmt.Errorf("resistance must be finite, got %v", r)
	}
	if r <= 0 {
		return fmt.Errorf("resistance must be positive, got %v", r)
	}
	return nil
}

func checkC(c float64) error {
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return fmt.Errorf("capacitance must be finite, got %v", c)
	}
	if c < 0 {
		return fmt.Errorf("capacitance must be nonnegative, got %v", c)
	}
	return nil
}

// Builder constructs a Tree incrementally. The zero value is not usable;
// create one with NewBuilder.
type Builder struct {
	nodes  []node
	byName map[string]int
	err    error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byName: make(map[string]int)}
}

// Root adds a node attached directly to the voltage source through
// resistance r, carrying grounded capacitance c. It returns the new
// node's index.
func (b *Builder) Root(name string, r, c float64) (int, error) {
	return b.add(name, Source, r, c)
}

// Attach adds a node as a child of parent (a previously returned index)
// through resistance r, carrying grounded capacitance c. It returns the
// new node's index.
func (b *Builder) Attach(parent int, name string, r, c float64) (int, error) {
	if parent < 0 || parent >= len(b.nodes) {
		err := fmt.Errorf("rctree: attach %q: parent index %d out of range [0,%d)", name, parent, len(b.nodes))
		b.fail(err)
		return -1, err
	}
	return b.add(name, parent, r, c)
}

// MustRoot is Root for hand-built circuits in tests and examples; it
// panics on error.
func (b *Builder) MustRoot(name string, r, c float64) int {
	id, err := b.Root(name, r, c)
	if err != nil {
		panic(err)
	}
	return id
}

// MustAttach is Attach for hand-built circuits; it panics on error.
func (b *Builder) MustAttach(parent int, name string, r, c float64) int {
	id, err := b.Attach(parent, name, r, c)
	if err != nil {
		panic(err)
	}
	return id
}

func (b *Builder) add(name string, parent int, r, c float64) (int, error) {
	if name == "" {
		name = fmt.Sprintf("n%d", len(b.nodes)+1)
	}
	if _, dup := b.byName[name]; dup {
		err := fmt.Errorf("rctree: duplicate node name %q", name)
		b.fail(err)
		return -1, err
	}
	if err := checkR(r); err != nil {
		err = fmt.Errorf("rctree: node %q: %w", name, err)
		b.fail(err)
		return -1, err
	}
	if err := checkC(c); err != nil {
		err = fmt.Errorf("rctree: node %q: %w", name, err)
		b.fail(err)
		return -1, err
	}
	id := len(b.nodes)
	depth := 1
	if parent != Source {
		depth = b.nodes[parent].depth + 1
	}
	b.nodes = append(b.nodes, node{name: name, parent: parent, r: r, c: c, depth: depth})
	if parent != Source {
		b.nodes[parent].children = append(b.nodes[parent].children, id)
	}
	b.byName[name] = id
	return id, nil
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Err returns the first error recorded by the builder, if any. It allows
// chained Must-free construction with a single check before Build.
func (b *Builder) Err() error { return b.err }

// Build finalizes the tree. It returns an error if any prior operation
// failed or if the resulting circuit is degenerate (empty, or entirely
// capacitance-free).
func (b *Builder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Tree{
		nodes:  b.nodes,
		byName: b.byName,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.computeOrders()
	// Detach the builder so further use cannot alias the built tree.
	b.nodes = nil
	b.byName = make(map[string]int)
	return t, nil
}

func (t *Tree) computeOrders() {
	n := len(t.nodes)
	for i := range t.nodes {
		if t.nodes[i].parent == Source {
			t.roots = append(t.roots, i)
		}
	}
	t.pre = make([]int, 0, n)
	t.post = make([]int, 0, n)
	// Iterative DFS to keep very deep chains (used in benches) from
	// exhausting the goroutine stack.
	type frame struct {
		node  int
		child int
	}
	var stack []frame
	for _, r := range t.Roots() {
		stack = append(stack, frame{node: r})
		t.pre = append(t.pre, r)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			kids := t.nodes[f.node].children
			if f.child < len(kids) {
				ch := kids[f.child]
				f.child++
				t.pre = append(t.pre, ch)
				stack = append(stack, frame{node: ch})
				continue
			}
			t.post = append(t.post, f.node)
			stack = stack[:len(stack)-1]
		}
	}
}

// Fingerprint returns a 64-bit FNV-1a hash of the tree's complete
// electrical identity: node count, names, parent links, and the exact
// bit patterns of every resistance and capacitance. Two trees with
// equal fingerprints are — up to hash collision — the same circuit, so
// derived artifacts (moment sets, analyses) may be shared between them.
//
// Mutation contract: Fingerprint is computed from the tree's CURRENT
// values on every call — it is never cached on the tree — so a
// SetR/SetC/SetValues edit changes the fingerprint the next time it is
// asked for. Consumers that key derived artifacts by fingerprint
// (batch.Cache) therefore stay correct across mutations as long as they
// re-fingerprint per request; what they cannot survive is a mutation
// racing a request on the same *Tree, or a caller reusing a fingerprint
// VALUE captured before an edit. The rules:
//
//   - Recompute, never cache: take the fingerprint at the moment a
//     derived artifact is requested, not earlier.
//   - Quiesce before mutating: do not SetR/SetC a tree while another
//     goroutine may be fingerprinting or analyzing it; mutate between
//     batches, or mutate a Clone.
//   - After a mutation, previously derived artifacts describe the OLD
//     circuit. They remain internally consistent (they snapshot values)
//     but must be looked up under the old fingerprint only.
func (t *Tree) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xff
			h *= prime
		}
	}
	mix(uint64(len(t.nodes)))
	for i := range t.nodes {
		n := &t.nodes[i]
		// Length-prefix the name so its bytes cannot be confused with
		// the fixed-width fields that follow: without it, shifting
		// bytes between a name and the adjacent mixed fields (or an
		// adjacent name) can produce the same byte stream for two
		// different circuits — a cache-poisoning hazard for consumers
		// that share derived artifacts by fingerprint.
		mix(uint64(len(n.name)))
		for j := 0; j < len(n.name); j++ {
			h ^= uint64(n.name[j])
			h *= prime
		}
		mix(uint64(n.parent) + 1) // +1 keeps Source (-1) distinct cheaply
		mix(math.Float64bits(n.r))
		mix(math.Float64bits(n.c))
	}
	return h
}

// SortedNames returns all node names sorted lexicographically; useful for
// deterministic report output.
func (t *Tree) SortedNames() []string {
	names := t.Names()
	sort.Strings(names)
	return names
}

// AddCap adds capacitance to a node already added to the builder —
// used by lumping code that deposits pi-section half-capacitances onto
// existing vertices. c must be nonnegative and finite.
func (b *Builder) AddCap(node int, c float64) error {
	if node < 0 || node >= len(b.nodes) {
		err := fmt.Errorf("rctree: AddCap: node index %d out of range [0,%d)", node, len(b.nodes))
		b.fail(err)
		return err
	}
	if err := checkC(c); err != nil {
		err = fmt.Errorf("rctree: AddCap node %q: %w", b.nodes[node].name, err)
		b.fail(err)
		return err
	}
	b.nodes[node].c += c
	return nil
}
