package topo

import (
	"math"
	"testing"
	"testing/quick"

	"elmore/internal/rctree"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1e-300)
}

// elmore computes T_D at node i without importing the moments package
// (keeps topo's tests dependency-free of higher layers).
func elmoreAt(t *rctree.Tree, i int) float64 {
	var td float64
	for k := 0; k < t.N(); k++ {
		td += t.SharedPathResistance(i, k) * t.C(k)
	}
	return td
}

func TestFig1Calibration(t *testing.T) {
	tree := Fig1Tree()
	if tree.N() != 7 {
		t.Fatalf("N = %d", tree.N())
	}
	cases := map[string]float64{"C1": 0.55e-9, "C5": 1.2e-9, "C7": 0.75e-9}
	for name, want := range cases {
		if got := elmoreAt(tree, tree.MustIndex(name)); !approx(got, want, 1e-12) {
			t.Errorf("T_D(%s) = %v, want %v", name, got, want)
		}
	}
	// Topology: C1 has two children (branches), C5 and C7 are leaves.
	if len(tree.Children(tree.MustIndex("C1"))) != 2 {
		t.Errorf("C1 should fork")
	}
	leaves := tree.Leaves()
	if len(leaves) != 2 {
		t.Errorf("leaves = %d", len(leaves))
	}
}

func TestLine25Calibration(t *testing.T) {
	tree := Line25Tree()
	if tree.N() != 25 {
		t.Fatalf("N = %d", tree.N())
	}
	if got := elmoreAt(tree, tree.MustIndex(Line25NodeA)); !approx(got, 0.02e-9, 1e-12) {
		t.Errorf("T_D(A) = %v", got)
	}
	if got := elmoreAt(tree, tree.MustIndex(Line25NodeC)); !approx(got, 1.56e-9, 1e-12) {
		t.Errorf("T_D(C) = %v", got)
	}
	// A pure chain: every node except the leaf has exactly one child.
	for i := 0; i < tree.N(); i++ {
		if n := len(tree.Children(i)); n > 1 {
			t.Fatalf("node %d has %d children; line must be a chain", i, n)
		}
	}
}

func TestChainStarBalancedShapes(t *testing.T) {
	c := Chain(5, 10, 1e-15)
	if c.N() != 5 || c.Depth(c.MustIndex("n5")) != 5 {
		t.Errorf("chain shape wrong")
	}
	s := Star(3, 4, 10, 1e-15)
	if s.N() != 1+3*4 {
		t.Errorf("star N = %d", s.N())
	}
	if len(s.Children(s.MustIndex("hub"))) != 3 {
		t.Errorf("star hub fanout wrong")
	}
	b := Balanced(3, 2, 10, 1e-15)
	if b.N() != 1+2+4 {
		t.Errorf("balanced N = %d", b.N())
	}
	if len(b.Leaves()) != 4 {
		t.Errorf("balanced leaves = %d", len(b.Leaves()))
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"chain":    func() { Chain(0, 1, 1e-15) },
		"star":     func() { Star(0, 1, 1, 1e-15) },
		"balanced": func() { Balanced(0, 2, 1, 1e-15) },
		"random":   func() { Random(1, RandomOptions{N: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on bad size", name)
				}
			}()
			f()
		}()
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(7, RandomOptions{N: 30})
	b := Random(7, RandomOptions{N: 30})
	if a.N() != b.N() {
		t.Fatalf("sizes differ")
	}
	for i := 0; i < a.N(); i++ {
		if a.R(i) != b.R(i) || a.C(i) != b.C(i) || a.Parent(i) != b.Parent(i) {
			t.Fatalf("same seed should give identical trees (node %d)", i)
		}
	}
	c := Random(8, RandomOptions{N: 30})
	same := true
	for i := 0; i < a.N(); i++ {
		if a.R(i) != c.R(i) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds should differ")
	}
}

func TestRandomRespectsRanges(t *testing.T) {
	f := func(seed int64) bool {
		opts := RandomOptions{N: 25, RMin: 5, RMax: 50, CMin: 2e-15, CMax: 9e-15}
		tree := Random(seed, opts)
		for i := 0; i < tree.N(); i++ {
			if tree.R(i) < opts.RMin || tree.R(i) > opts.RMax {
				return false
			}
			if tree.C(i) < opts.CMin || tree.C(i) > opts.CMax {
				return false
			}
		}
		return tree.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestChaininessShapesTree(t *testing.T) {
	// Chaininess 1 must produce a pure chain; chaininess near 0 a bushy
	// tree with depth << N.
	chain := Random(3, RandomOptions{N: 60, Chaininess: 1})
	maxDepth := 0
	for i := 0; i < chain.N(); i++ {
		if d := chain.Depth(i); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 60 {
		t.Errorf("chaininess=1: depth %d, want 60", maxDepth)
	}
	bushy := Random(3, RandomOptions{N: 60, Chaininess: 1e-9})
	maxDepth = 0
	for i := 0; i < bushy.N(); i++ {
		if d := bushy.Depth(i); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth >= 30 {
		t.Errorf("chaininess~0: depth %d, want bushy (< 30)", maxDepth)
	}
}

func TestRandomSmallBounds(t *testing.T) {
	f := func(seed int64) bool {
		tree := RandomSmall(seed, 20)
		return tree.N() >= 1 && tree.N() <= 20 && tree.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if got := RandomSmall(1, 0); got.N() != 1 {
		t.Errorf("maxN < 1 should clamp to 1")
	}
}

func TestHTree(t *testing.T) {
	tree := HTree(4, 200, 40e-15, 5e-15)
	// Nodes: 1 + 2 + 4 + 8 = 15 for levels=4 (trunk is level 1).
	if tree.N() != 15 {
		t.Fatalf("N = %d, want 15", tree.N())
	}
	leaves := tree.Leaves()
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	// Perfect symmetry: all leaves share one Elmore delay.
	td0 := elmoreAt(tree, leaves[0])
	for _, l := range leaves[1:] {
		if !approx(elmoreAt(tree, l), td0, 1e-12) {
			t.Fatalf("H-tree should have zero Elmore skew")
		}
	}
	// Geometric taper: child resistance is half the parent's.
	hl := tree.MustIndex("hL")
	hll := tree.MustIndex("hLL")
	if tree.R(hll) != tree.R(hl)/2 {
		t.Errorf("taper wrong: %v vs %v", tree.R(hll), tree.R(hl))
	}
	defer func() {
		if recover() == nil {
			t.Errorf("levels < 1 should panic")
		}
	}()
	HTree(0, 1, 1e-15, 1e-15)
}
