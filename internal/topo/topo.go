// Package topo builds the circuits used throughout the repository: the
// calibrated paper circuits (Fig. 1 tree, 25-node line), parametric
// families (chains, stars, balanced trees) for benchmarks, and seeded
// random RC trees for property-based testing.
package topo

import (
	"fmt"
	"math"
	"math/rand"

	"elmore/internal/rctree"
)

// Fig1Tree returns a 7-capacitor RC tree with the topology class of the
// paper's Fig. 1 (a driving-point node feeding a 4-node branch and a
// 2-node branch), calibrated so the Elmore delays at C1, C5 and C7
// equal the paper's Table I column (3): 0.55 ns, 1.2 ns, 0.75 ns.
//
// The paper does not print its component values, so the remaining
// Table I columns are compared shape-wise in EXPERIMENTS.md.
func Fig1Tree() *rctree.Tree {
	b := rctree.NewBuilder()
	c1 := b.MustRoot("C1", 100, 1e-12)
	// Branch A: C2 - C3 - C4 - C5.
	const rA = 81.25
	c2 := b.MustAttach(c1, "C2", rA, 1e-12)
	c3 := b.MustAttach(c2, "C3", rA, 1e-12)
	c4 := b.MustAttach(c3, "C4", rA, 1e-12)
	b.MustAttach(c4, "C5", rA, 0.5e-12)
	// Branch B: C6 - C7.
	c6 := b.MustAttach(c1, "C6", 100, 0.5e-12)
	b.MustAttach(c6, "C7", 200, 0.5e-12)
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: Fig1Tree: %v", err))
	}
	return t
}

// Line25 node names for the three observation points used by the
// paper's Table II and Figs. 13-14: A near the driving point, B in the
// middle, C at the leaf.
const (
	Line25NodeA = "n1"
	Line25NodeB = "n13"
	Line25NodeC = "n25"
)

// Line25Tree returns a uniform 25-node RC line calibrated so that the
// Elmore delays at A (n1) and C (n25) match the paper's Table II:
// T_D(A) = 0.02 ns and T_D(C) = 1.56 ns. (T_D(B) then lands at
// 1.16 ns vs the paper's 1.13 ns; the paper's exact tree is not
// published.)
func Line25Tree() *rctree.Tree {
	const (
		n     = 25
		c     = 80e-15 // per-node capacitance: total 2 pF
		rRoot = 10.0   // 10 ohm * 2 pF = 0.02 ns at the driving point
	)
	// Remaining 1.54 ns spread over sum_{j=2..25} (26-j) = 300 segment
	// loads of c each.
	r := (1.56e-9 - 0.02e-9) / (c * 300)
	b := rctree.NewBuilder()
	prev := b.MustRoot("n1", rRoot, c)
	for i := 2; i <= n; i++ {
		prev = b.MustAttach(prev, fmt.Sprintf("n%d", i), r, c)
	}
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: Line25Tree: %v", err))
	}
	return t
}

// Chain returns an n-node chain (uniform RC line) with per-segment
// resistance r and per-node capacitance c. Node names are n1..nN.
func Chain(n int, r, c float64) *rctree.Tree {
	if n < 1 {
		panic("topo: Chain needs n >= 1")
	}
	b := rctree.NewBuilder()
	prev := b.MustRoot("n1", r, c)
	for i := 2; i <= n; i++ {
		prev = b.MustAttach(prev, fmt.Sprintf("n%d", i), r, c)
	}
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: Chain: %v", err))
	}
	return t
}

// Star returns a hub node feeding `branches` chains of `perBranch`
// nodes each — the classic model of a driver fanning out to several
// sinks. Node names: hub, b<i>_n<j>.
func Star(branches, perBranch int, r, c float64) *rctree.Tree {
	if branches < 1 || perBranch < 1 {
		panic("topo: Star needs branches, perBranch >= 1")
	}
	b := rctree.NewBuilder()
	hub := b.MustRoot("hub", r, c)
	for i := 1; i <= branches; i++ {
		prev := hub
		for j := 1; j <= perBranch; j++ {
			prev = b.MustAttach(prev, fmt.Sprintf("b%d_n%d", i, j), r, c)
		}
	}
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: Star: %v", err))
	}
	return t
}

// Balanced returns a balanced tree of the given fanout and depth
// (depth 1 = just the root). Node names are h-addresses: t, t0, t01, ...
// It models a buffered clock distribution level.
func Balanced(depth, fanout int, r, c float64) *rctree.Tree {
	if depth < 1 || fanout < 1 {
		panic("topo: Balanced needs depth, fanout >= 1")
	}
	b := rctree.NewBuilder()
	root := b.MustRoot("t", r, c)
	var grow func(parent int, name string, d int)
	grow = func(parent int, name string, d int) {
		if d >= depth {
			return
		}
		for i := 0; i < fanout; i++ {
			child := b.MustAttach(parent, fmt.Sprintf("%s%d", name, i), r, c)
			grow(child, fmt.Sprintf("%s%d", name, i), d+1)
		}
	}
	grow(root, "t", 1)
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: Balanced: %v", err))
	}
	return t
}

// RandomOptions parameterizes Random tree generation.
type RandomOptions struct {
	N    int     // number of nodes (>= 1)
	RMin float64 // min resistance (ohms); default 10
	RMax float64 // max resistance; default 1000
	CMin float64 // min capacitance (farads); default 1e-15
	CMax float64 // max capacitance; default 1e-12
	// Chaininess in [0,1]: probability that a new node extends the most
	// recently added node (long chains) rather than attaching to a
	// uniformly random node (bushy trees). Default 0.5.
	Chaininess float64
}

func (o *RandomOptions) setDefaults() {
	if o.RMin == 0 {
		o.RMin = 10
	}
	if o.RMax == 0 {
		o.RMax = 1000
	}
	if o.CMin == 0 {
		o.CMin = 1e-15
	}
	if o.CMax == 0 {
		o.CMax = 1e-12
	}
	if o.Chaininess == 0 {
		o.Chaininess = 0.5
	}
}

// Random returns a seeded random RC tree. Values are log-uniform within
// the configured ranges, so the trees exercise widely separated time
// constants — the regime where naive delay metrics fail.
func Random(seed int64, opts RandomOptions) *rctree.Tree {
	opts.setDefaults()
	if opts.N < 1 {
		panic("topo: Random needs N >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	logUniform := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	b := rctree.NewBuilder()
	last := b.MustRoot("n1", logUniform(opts.RMin, opts.RMax), logUniform(opts.CMin, opts.CMax))
	ids := []int{last}
	for i := 2; i <= opts.N; i++ {
		parent := last
		if rng.Float64() >= opts.Chaininess {
			parent = ids[rng.Intn(len(ids))]
		}
		last = b.MustAttach(parent, fmt.Sprintf("n%d", i),
			logUniform(opts.RMin, opts.RMax), logUniform(opts.CMin, opts.CMax))
		ids = append(ids, last)
	}
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: Random: %v", err))
	}
	return t
}

// RandomSmall returns a random tree with 1..maxN nodes — the workhorse
// input for property-based tests across the repository.
func RandomSmall(seed int64, maxN int) *rctree.Tree {
	if maxN < 1 {
		maxN = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	return Random(seed+1, RandomOptions{N: n})
}

// HTree returns a classic H-tree clock distribution of the given number
// of levels: each level halves the wire length, so segment resistance
// halves and capacitance halves level by level (width tapering is left
// to the caller via SetR/SetC). Level 1 is the trunk from the source;
// leaves are 2^levels sink nodes carrying sinkC each. Node names encode
// the path: h, hL, hR, hLL, ...
func HTree(levels int, trunkR, trunkC, sinkC float64) *rctree.Tree {
	if levels < 1 {
		panic("topo: HTree needs levels >= 1")
	}
	b := rctree.NewBuilder()
	root := b.MustRoot("h", trunkR, trunkC)
	var grow func(parent int, name string, level int, r, c float64)
	grow = func(parent int, name string, level int, r, c float64) {
		if level > levels {
			return
		}
		for _, side := range []string{"L", "R"} {
			childName := name + side
			cc := c
			if level == levels {
				cc += sinkC
			}
			child := b.MustAttach(parent, childName, r, cc)
			grow(child, childName, level+1, r/2, c/2)
		}
	}
	grow(root, "h", 2, trunkR/2, trunkC/2)
	t, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("topo: HTree: %v", err))
	}
	return t
}
