package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const demoDeck = `.title demo
Vin in 0 1
R1 in n1 100
C1 n1 0 1p
R2 n1 n2 200
C2 n2 0 2p
.end
`

func runCLI(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestReportFromStdin(t *testing.T) {
	out, _, err := runCLI(t, nil, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "n1", "n2", "upper(T_D)", "critical sink: n2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// T_D(n2) = 100*3p + 200*2p = 700ps.
	if !strings.Contains(out, "700ps") {
		t.Errorf("expected 700ps in output:\n%s", out)
	}
}

func TestReportFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.sp")
	if err := os.WriteFile(path, []byte(demoDeck), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCLI(t, []string{path}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n2") {
		t.Errorf("file input not analyzed:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	out, _, err := runCLI(t, []string{"-csv"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "node,elmore,lower,upper") {
		t.Errorf("CSV header wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("want 2 data rows:\n%s", out)
	}
}

func TestExactAndRise(t *testing.T) {
	out, _, err := runCLI(t, []string{"-exact", "-rise", "1n"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exact") || !strings.Contains(out, "ramp(tr=1e-09)") {
		t.Errorf("exact/rise output wrong:\n%s", out)
	}
}

func TestNodeFilter(t *testing.T) {
	out, _, err := runCLI(t, []string{"-node", "n1"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "\nn2") {
		t.Errorf("filter leaked other nodes:\n%s", out)
	}
	if _, _, err := runCLI(t, []string{"-node", "zz"}, demoDeck); err == nil {
		t.Errorf("unknown node should error")
	}
}

func TestZeroCapRegularizedForExact(t *testing.T) {
	deck := "Vin in 0 1\nR1 in j 10\nR2 j a 10\nC1 a 0 1p\n"
	out, errOut, err := runCLI(t, []string{"-exact"}, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "regularized") {
		t.Errorf("expected regularization warning, got %q", errOut)
	}
	if !strings.Contains(out, "exact") {
		t.Errorf("exact column missing")
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := runCLI(t, nil, "not a deck"); err == nil {
		t.Errorf("bad deck should error")
	}
	if _, _, err := runCLI(t, []string{"-rise", "zzz"}, demoDeck); err == nil {
		t.Errorf("bad rise should error")
	}
	if _, _, err := runCLI(t, []string{"a", "b"}, demoDeck); err == nil {
		t.Errorf("two files should error")
	}
	if _, _, err := runCLI(t, []string{"/nonexistent/file.sp"}, ""); err == nil {
		t.Errorf("missing file should error")
	}
}

func TestSimplifyFlag(t *testing.T) {
	deck := "Vin in 0 1\nR1 in j 10\nR2 j a 10\nC1 a 0 1p\n"
	out, errOut, err := runCLI(t, []string{"-simplify"}, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "simplified 2 nodes -> 1") {
		t.Errorf("missing simplify note: %q", errOut)
	}
	if strings.Contains(out, "\nj ") {
		t.Errorf("junction should be gone:\n%s", out)
	}
}

func TestCornersFlag(t *testing.T) {
	out, _, err := runCLI(t, []string{"-corners", "0.15"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "guaranteed delay intervals under +-15% R/C variation") {
		t.Errorf("corners section missing:\n%s", out)
	}
	if _, _, err := runCLI(t, []string{"-corners", "2"}, demoDeck); err == nil {
		t.Errorf("corners >= 1 should fail")
	}
}

func TestVersionFlag(t *testing.T) {
	out, _, err := runCLI(t, []string{"-version"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "elmore ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}

func TestTraceAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	out, errOut, err := runCLI(t, []string{"-trace", path, "-metrics"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "critical sink") {
		t.Errorf("analysis output missing:\n%s", out)
	}

	// The trace must hold parseable JSON lines with the phase spans
	// parse, analyze and report nested under elmore.run.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Span   int64  `json:"span"`
		Parent int64  `json:"parent"`
		Name   string `json:"name"`
		DurNS  int64  `json:"dur_ns"`
	}
	byName := map[string]rec{}
	for _, ln := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("bad trace line %q: %v", ln, err)
		}
		byName[r.Name] = r
	}
	rootSpan, ok := byName["elmore.run"]
	if !ok {
		t.Fatalf("no elmore.run span in trace:\n%s", data)
	}
	for _, phase := range []string{"parse", "analyze", "report"} {
		sp, ok := byName[phase]
		if !ok {
			t.Errorf("no %q span in trace:\n%s", phase, data)
			continue
		}
		if sp.Parent != rootSpan.Span {
			t.Errorf("%q span parent = %d, want elmore.run (%d)", phase, sp.Parent, rootSpan.Span)
		}
	}
	if _, ok := byName["core.analyze"]; !ok {
		t.Errorf("engine span core.analyze missing from trace:\n%s", data)
	}

	// The metrics snapshot must list the analysis node count.
	if !strings.Contains(errOut, "counter core.nodes_analyzed 2") {
		t.Errorf("metrics snapshot missing node count:\n%s", errOut)
	}
	if !strings.Contains(errOut, "counter moments.node_visits") {
		t.Errorf("metrics snapshot missing solver step counts:\n%s", errOut)
	}
}

func TestWindowFlag(t *testing.T) {
	out, _, err := runCLI(t, []string{"-window", "0.9"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "guaranteed 90%-crossing windows") {
		t.Errorf("window section missing:\n%s", out)
	}
	if _, _, err := runCLI(t, []string{"-window", "1.5"}, demoDeck); err == nil {
		t.Errorf("threshold >= 1 should fail")
	}
}
