// Command elmore is an RC-tree timing analyzer. It reads a SPICE-style
// deck and prints, for every node, the Elmore delay upper bound, the
// mu-sigma lower bound, the single-pole estimate, and the
// Penfield-Rubinstein bounds — optionally alongside the exact 50% delay
// and the bounds for a finite input rise time.
//
// Usage:
//
//	elmore [-exact] [-rise 1ns] [-node NAME] [-csv] [netlist.sp]
//
// With no file argument the deck is read from stdin.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"elmore/internal/cliutil"
	"elmore/internal/core"
	"elmore/internal/exact"
	"elmore/internal/netlist"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "elmore:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("elmore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		doExact  = fs.Bool("exact", false, "also compute exact 50% delays and rise times (O(N^3); trees up to a few hundred nodes)")
		riseStr  = fs.String("rise", "", "input rise time (e.g. 1n) for generalized-input bounds; empty = step input")
		nodeSel  = fs.String("node", "", "report only this node (default: all nodes, topological order)")
		asCSV    = fs.Bool("csv", false, "emit CSV instead of a text table")
		simplify = fs.Bool("simplify", false, "merge zero-capacitance junctions before analysis")
		corners  = fs.Float64("corners", 0, "if > 0, also print guaranteed delay intervals under +-X relative R/C variation (e.g. 0.15)")
		window   = fs.Float64("window", 0, "if in (0,1), also print guaranteed crossing-time windows at this threshold")
	)
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("elmore"))
		return nil
	}
	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	ctx, root := telemetry.Start(sess.Context(), "elmore.run")
	defer root.End()

	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one netlist file")
	}

	_, psp := telemetry.Start(ctx, "parse")
	deck, err := netlist.Parse(in)
	psp.End()
	if err != nil {
		return err
	}
	for _, w := range deck.Warnings {
		fmt.Fprintln(stderr, "warning:", w)
	}
	tree := deck.Tree
	if *simplify {
		simp, err := tree.Simplify()
		if err != nil {
			return fmt.Errorf("-simplify: %w", err)
		}
		fmt.Fprintf(stderr, "simplified %d nodes -> %d\n", tree.N(), simp.N())
		tree = simp
	}
	root.AttrInt("nodes", int64(tree.N()))

	actx, asp := telemetry.Start(ctx, "analyze")
	an, err := core.AnalyzeContext(actx, tree)
	if err != nil {
		asp.End()
		return err
	}

	var sig signal.Signal = signal.Step{}
	if *riseStr != "" {
		tr, err := rctree.ParseValue(*riseStr)
		if err != nil {
			asp.End()
			return fmt.Errorf("-rise: %w", err)
		}
		sig = signal.SaturatedRamp{Tr: tr}
	}

	var sys *exact.System
	if *doExact {
		work := tree
		for i := 0; i < tree.N(); i++ {
			if tree.C(i) == 0 {
				work = exact.Regularize(tree, 0)
				fmt.Fprintln(stderr, "warning: zero-capacitance nodes regularized for the exact engine")
				break
			}
		}
		sys, err = exact.NewSystemContext(actx, work)
		if err != nil {
			asp.End()
			return err
		}
	}
	asp.End()

	_, rsp := telemetry.Start(ctx, "report")
	defer rsp.End()

	nodes := tree.PreOrder()
	if *nodeSel != "" {
		i, ok := tree.Index(*nodeSel)
		if !ok {
			return fmt.Errorf("no node named %q (have: %s)", *nodeSel, strings.Join(tree.SortedNames(), ", "))
		}
		nodes = []int{i}
	}

	type row struct {
		name                                 string
		elmore, lower, upper, single         float64
		prhMin, prhMax, sigma, skew, riseEst float64
		exactDelay                           float64
		hasExact                             bool
	}
	var rows []row
	for _, i := range nodes {
		b := an.Bounds[i]
		r := row{
			name: b.Node, elmore: b.Elmore, lower: b.Lower, upper: b.Elmore,
			single: b.SinglePole, prhMin: b.PRHTmin, prhMax: b.PRHTmax,
			sigma: b.Sigma, skew: b.Skewness, riseEst: b.RiseTime,
		}
		if _, isStep := sig.(signal.Step); !isStep {
			ib, err := an.ForInput(i, sig)
			if err != nil {
				return err
			}
			r.upper = ib.Upper
			r.lower = ib.Lower
		}
		if sys != nil {
			d, err := sys.Delay(i, sig, 0)
			if err != nil {
				return err
			}
			r.exactDelay = d
			r.hasExact = true
		}
		rows = append(rows, r)
	}

	if *asCSV {
		fmt.Fprintln(stdout, "node,elmore,lower,upper,single_pole,prh_tmin,prh_tmax,sigma,skewness,rise_est,exact_delay")
		for _, r := range rows {
			ex := ""
			if r.hasExact {
				ex = fmt.Sprintf("%.6g", r.exactDelay)
			}
			fmt.Fprintf(stdout, "%s,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%s\n",
				r.name, r.elmore, r.lower, r.upper, r.single, r.prhMin, r.prhMax, r.sigma, r.skew, r.riseEst, ex)
		}
		return nil
	}

	title := deck.Title
	if title == "" {
		title = "RC tree"
	}
	fmt.Fprintf(stdout, "%s — %d nodes, input %q, input signal %v\n", title, tree.N(), deck.InputNode, sig)
	fmt.Fprintf(stdout, "T_P (PRH) = %s, total C = %s, total R = %s\n\n",
		rctree.FormatSeconds(an.TP), rctree.FormatFarads(tree.TotalC()), rctree.FormatOhms(tree.TotalR()))
	header := fmt.Sprintf("%-10s %10s %10s %10s %10s %10s %10s %8s %10s",
		"node", "lower", "upper(T_D)", "ln2*T_D", "PRH_tmin", "PRH_tmax", "sigma", "skew", "riseEst")
	if sys != nil {
		header += fmt.Sprintf(" %10s", "exact")
	}
	fmt.Fprintln(stdout, header)
	for _, r := range rows {
		line := fmt.Sprintf("%-10s %10s %10s %10s %10s %10s %10s %8.3g %10s",
			r.name,
			rctree.FormatSeconds(r.lower), rctree.FormatSeconds(r.upper),
			rctree.FormatSeconds(r.single),
			rctree.FormatSeconds(r.prhMin), rctree.FormatSeconds(r.prhMax),
			rctree.FormatSeconds(r.sigma), r.skew, rctree.FormatSeconds(r.riseEst))
		if r.hasExact {
			line += fmt.Sprintf(" %10s", rctree.FormatSeconds(r.exactDelay))
		}
		fmt.Fprintln(stdout, line)
	}

	// Critical sink summary: the leaf with the largest Elmore bound.
	leaves := tree.Leaves()
	sort.Slice(leaves, func(a, b int) bool {
		return an.Bounds[leaves[a]].Elmore > an.Bounds[leaves[b]].Elmore
	})
	if len(leaves) > 0 && *nodeSel == "" {
		crit := an.Bounds[leaves[0]]
		fmt.Fprintf(stdout, "\ncritical sink: %s, T_D = %s\n", crit.Node, rctree.FormatSeconds(crit.Elmore))
	}

	if *window > 0 {
		if *window >= 1 {
			return fmt.Errorf("-window: threshold must be in (0,1)")
		}
		fmt.Fprintf(stdout, "\nguaranteed %.0f%%-crossing windows (PRH bracket, moment-tightened at 50%%):\n", *window*100)
		for _, i := range nodes {
			lo, hi, err := an.WindowAt(i, *window)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-10s [%s, %s]\n", tree.Name(i),
				rctree.FormatSeconds(lo), rctree.FormatSeconds(hi))
		}
	}

	if *corners > 0 {
		iv, err := core.CornerIntervals(tree, core.CornerOptions{RRel: *corners, CRel: *corners})
		if err != nil {
			return fmt.Errorf("-corners: %w", err)
		}
		fmt.Fprintf(stdout, "\nguaranteed delay intervals under +-%.0f%% R/C variation:\n", *corners*100)
		for _, i := range nodes {
			fmt.Fprintf(stdout, "%-10s [%s, %s]\n", iv[i].Node,
				rctree.FormatSeconds(iv[i].Lower), rctree.FormatSeconds(iv[i].Upper))
		}
	}
	return nil
}
