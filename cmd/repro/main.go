// Command repro regenerates every table and figure of the paper's
// evaluation and reports measured-vs-paper comparisons plus structural
// checks (bound ordering, monotone convergence, decreasing error).
//
// Usage:
//
//	repro [-exp all|tableI|tableII|fig3|fig4|fig5|fig12|fig13|fig14]
//	      [-outdir DIR]
//
// With -outdir, each experiment also writes its CSV data file.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"elmore/internal/cliutil"
	"elmore/internal/plot"
	"elmore/internal/repro"
	"elmore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expSel = fs.String("exp", "all", "experiment: all, tableI, tableII, fig3, fig4, fig5, fig12, fig13, fig14")
		outdir = fs.String("outdir", "", "also write CSV data files to this directory")
		doPlot = fs.Bool("plot", false, "render figures as ASCII charts")
	)
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("repro"))
		return nil
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	ctx, root := telemetry.Start(sess.Context(), "repro.run")
	root.AttrString("exp", *expSel)
	defer root.End()
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	writeCSV := func(name, content string) error {
		if *outdir == "" {
			return nil
		}
		return os.WriteFile(filepath.Join(*outdir, name), []byte(content), 0o644)
	}
	ran := false
	// want doubles as the experiment phase marker: a selected experiment
	// opens a child span that the matching done() call closes.
	var expSpan *telemetry.Span
	want := func(name string) bool {
		if *expSel != "all" && *expSel != name {
			return false
		}
		_, expSpan = telemetry.Start(ctx, "repro."+name)
		return true
	}
	done := func() {
		expSpan.End()
		expSpan = nil
	}

	plotSeries := func(title, xlabel string, series []repro.Series, logX bool) error {
		if !*doPlot {
			return nil
		}
		ps := make([]plot.Series, len(series))
		for k, s := range series {
			ps[k] = plot.Series{Name: s.Name, X: s.X, Y: s.Y}
		}
		txt, err := plot.Render(ps, plot.Options{Title: title, XLabel: xlabel, LogX: logX})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, txt)
		return nil
	}

	reportChecks := func(label string, bad []string) {
		if len(bad) == 0 {
			fmt.Fprintf(stdout, "[%s] structural checks: PASS\n\n", label)
			return
		}
		fmt.Fprintf(stdout, "[%s] structural checks: FAIL\n", label)
		for _, b := range bad {
			fmt.Fprintf(stdout, "  - %s\n", b)
		}
		fmt.Fprintln(stdout)
	}

	if want("tableI") {
		ran = true
		res, err := repro.TableI()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Render())
		fmt.Fprintln(stdout, "\npaper's published Table I (their unpublished R/C values):")
		for _, name := range repro.TableINodes {
			p := repro.PaperTableI[name]
			fmt.Fprintf(stdout, "%-5s actual=%.4g ns  T_D=%.4g ns  lower=%.4g ns  ln2*T_D=%.4g ns  tmax=%.4g ns  tmin=%.4g ns\n",
				name, p.Actual*1e9, p.Elmore*1e9, p.Lower*1e9, p.SinglePole*1e9, p.PRHTmax*1e9, p.PRHTmin*1e9)
		}
		reportChecks("Table I", res.Check())
		if err := writeCSV("table1.csv", res.CSV()); err != nil {
			return err
		}
		done()
	}
	if want("tableII") {
		ran = true
		res, err := repro.TableII()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Render())
		fmt.Fprintln(stdout, "\npaper's published Table II:")
		for _, label := range []string{"A", "B", "C"} {
			p := repro.PaperTableII[label]
			fmt.Fprintf(stdout, "%-5s T_D=%.4g ns delays(ns)=%.4g/%.4g/%.4g err%%=%.4g/%.4g/%.4g\n",
				label, p.Elmore*1e9, p.Delays[0]*1e9, p.Delays[1]*1e9, p.Delays[2]*1e9,
				p.ErrPcts[0], p.ErrPcts[1], p.ErrPcts[2])
		}
		reportChecks("Table II", res.Check())
		if err := writeCSV("table2.csv", res.CSV()); err != nil {
			return err
		}
		done()
	}
	figSeries := map[string]func() ([]repro.Series, error){
		"fig3":  repro.Fig3,
		"fig5":  repro.Fig5,
		"fig13": repro.Fig13,
	}
	for _, name := range []string{"fig3", "fig5", "fig13"} {
		if !want(name) {
			continue
		}
		ran = true
		series, err := figSeries[name]()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "[%s] %d series:", name, len(series))
		for _, s := range series {
			fmt.Fprintf(stdout, " %s(%d pts)", s.Name, len(s.X))
		}
		fmt.Fprintln(stdout)
		if name == "fig13" {
			skews, err := repro.Fig13Skews()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "[fig13] skewness: A=%.3f B=%.3f C=%.3f (decreasing downstream)\n",
				skews["A"], skews["B"], skews["C"])
		}
		fmt.Fprintln(stdout)
		if err := plotSeries(name, "t (s)", series, false); err != nil {
			return err
		}
		if err := writeCSV(name+".csv", repro.SeriesCSV(series)); err != nil {
			return err
		}
		done()
	}
	if want("fig4") {
		ran = true
		series := repro.Fig4()
		fmt.Fprintf(stdout, "[fig4] symmetric density illustration: %d pts (mean = median = mode)\n\n", len(series[0].X))
		if err := plotSeries("fig4", "t", series, false); err != nil {
			return err
		}
		if err := writeCSV("fig4.csv", repro.SeriesCSV(series)); err != nil {
			return err
		}
		done()
	}
	if want("fig12") {
		ran = true
		res, err := repro.Fig12(nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Render())
		reportChecks("Fig. 12", res.Check())
		var curves []repro.Series
		for _, n := range res.Nodes {
			curves = append(curves, repro.Series{Name: n, X: res.RiseTimes, Y: res.Delays[n]})
		}
		if err := plotSeries("fig12: 50% delay vs rise time (log x)", "rise time (s)", curves, true); err != nil {
			return err
		}
		if err := writeCSV("fig12.csv", res.CSV()); err != nil {
			return err
		}
		done()
	}
	if want("fig14") {
		ran = true
		res, err := repro.Fig14(nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Render())
		reportChecks("Fig. 14", res.Check())
		var curves []repro.Series
		for _, tr := range res.RiseTimes {
			xs := make([]float64, len(res.Positions))
			for k, p := range res.Positions {
				xs[k] = float64(p)
			}
			curves = append(curves, repro.Series{
				Name: "tr=" + fmt.Sprintf("%g", tr), X: xs, Y: res.ErrPct[tr],
			})
		}
		if err := plotSeries("fig14: relative error (%) vs node position", "node", curves, false); err != nil {
			return err
		}
		if err := writeCSV("fig14.csv", res.CSV()); err != nil {
			return err
		}
		done()
	}
	if want("prh") {
		ran = true
		for _, node := range []string{"C1", "C5", "C7"} {
			series, err := repro.FigPRH(node)
			if err != nil {
				return err
			}
			bad := repro.CheckPRHFigure(series)
			fmt.Fprintf(stdout, "[prh] %s: exact t(v) bracketed by PRH t_min/t_max over %d levels\n", node, len(series[0].X))
			reportChecks("PRH@"+node, bad)
			if err := plotSeries("PRH waveform bounds @ "+node, "t (s)", series, false); err != nil {
				return err
			}
			if err := writeCSV("prh_"+node+".csv", repro.SeriesCSV(series)); err != nil {
				return err
			}
		}
		done()
	}
	if want("shapes") {
		ran = true
		rows, err := repro.InputShapeStudy("C5", 0.3e-9)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "[shapes] equal-sigma input edges at C5 (extension study):")
		fmt.Fprintf(stdout, "%-24s %12s %12s %10s\n", "input", "bound", "exact", "margin%")
		for _, r := range rows {
			fmt.Fprintf(stdout, "%-24s %12.4g %12.4g %10.2f\n", r.Input, r.Upper*1e9, r.Delay*1e9, r.MarginPct)
		}
		reportChecks("input shapes", repro.CheckInputShapes(rows))
		done()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q; want one of all, tableI, tableII, fig3, fig4, fig5, fig12, fig13, fig14, prh, shapes", *expSel)
	}
	return nil
}
