package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestSingleExperiments(t *testing.T) {
	cases := map[string][]string{
		"tableI":  {"Table I", "structural checks: PASS"},
		"tableII": {"Table II", "structural checks: PASS"},
		"fig3":    {"[fig3]"},
		"fig4":    {"[fig4]"},
		"fig5":    {"[fig5]"},
		"fig12":   {"Fig. 12", "structural checks: PASS"},
		"fig13":   {"[fig13] skewness"},
		"fig14":   {"Fig. 14", "structural checks: PASS"},
	}
	for exp, wants := range cases {
		out, err := runCLI(t, "-exp", exp)
		if err != nil {
			t.Errorf("%s: %v", exp, err)
			continue
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s: output missing %q", exp, w)
			}
		}
	}
}

func TestAllWithOutdir(t *testing.T) {
	dir := t.TempDir()
	out, err := runCLI(t, "-outdir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("structural checks failed:\n%s", out)
	}
	for _, f := range []string{"table1.csv", "table2.csv", "fig3.csv", "fig4.csv", "fig5.csv", "fig12.csv", "fig13.csv", "fig14.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := runCLI(t, "-exp", "fig99"); err == nil {
		t.Errorf("unknown experiment should fail")
	}
}

func TestPlotFlag(t *testing.T) {
	for _, exp := range []string{"fig12", "fig14", "fig3", "fig4"} {
		out, err := runCLI(t, "-exp", exp, "-plot")
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out, "* = ") {
			t.Errorf("%s: plot legend missing:\n%s", exp, out[:min(len(out), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExtensionExperiments(t *testing.T) {
	out, err := runCLI(t, "-exp", "prh")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PRH@C5") || !strings.Contains(out, "PASS") {
		t.Errorf("prh output wrong:\n%s", out)
	}
	out, err = runCLI(t, "-exp", "shapes")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exp(tau=") || !strings.Contains(out, "PASS") {
		t.Errorf("shapes output wrong:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runCLI(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "repro ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}
