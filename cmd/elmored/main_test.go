package main

import (
	"bytes"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is a goroutine-safe bytes.Buffer for capturing run()'s stderr
// while the test polls it for the listen line.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRe = regexp.MustCompile(`listening on (http://[^ ]+)`)

// TestRunServesMetricsAndExitsZeroOnSIGTERM drives main's run() with no
// observability flags: /metrics must still be a live registry (the
// one-shot CLIs' nil-registry default would serve an empty page), and
// SIGTERM must drain and return nil — the exit-0 contract.
func TestRunServesMetricsAndExitsZeroOnSIGTERM(t *testing.T) {
	var stderr syncBuf
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-slo", "p99=1s"}, io.Discard, &stderr)
	}()

	var url string
	for i := 0; i < 100; i++ {
		if m := listenRe.FindStringSubmatch(stderr.String()); m != nil {
			url = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, stderr.String())
		case <-time.After(20 * time.Millisecond):
		}
	}
	if url == "" {
		t.Fatalf("no listen line:\n%s", stderr.String())
	}

	resp, err := http.Post(url+"/v1/analyze", "application/x-ndjson", strings.NewReader(specLine("m1")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_requests 1", "serve_jobs 1", "serve_slo_p99_good 1", "# HELP serve_requests"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
	if !strings.Contains(stderr.String(), "drained clean") {
		t.Errorf("drain message missing:\n%s", stderr.String())
	}
}

// TestRunRejectsBadFlags: validation happens before any listener opens.
func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-rate", "-1"},
		{"-max-deadline", "-1s"},
		{"-slo", "p0=1s"},
		{"positional"},
	} {
		if err := run(args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
