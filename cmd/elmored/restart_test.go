package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elmore/internal/faultinject"
)

// TestKillAndRestartExactlyOnce is the acceptance test for graceful
// drain + journal-backed resume: a drain forced mid-batch (the SIGTERM
// path in main) loses zero accepted jobs and duplicates none — the
// union of the interrupted stream and the resumed stream is exactly
// the submitted job set.
func TestKillAndRestartExactlyOnce(t *testing.T) {
	const njobs = 40
	journalDir := t.TempDir()
	cfg := testConfig()
	cfg.JournalDir = journalDir
	body := specBody(njobs)

	// Slow every attempt so the drain lands mid-batch.
	prev := faultinject.SetDefault(faultinject.New(1, faultinject.Rule{
		Point: "batch.dispatch", Kind: faultinject.KindDelay, Every: 1, Delay: 10 * time.Millisecond,
	}))
	defer faultinject.SetDefault(prev)

	// --- incarnation A: interrupt mid-batch ---
	sA := newServer(context.Background(), cfg)
	tsA := httptest.NewServer(sA.handler())
	seen := map[string]int{}
	var sumA serveSummary

	req, err := http.NewRequest(http.MethodPost, tsA.URL+"/v1/analyze?batch=b1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drained := make(chan error, 1)
	sc := bufio.NewScanner(resp.Body)
	kicked := false
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if m["record"] == "serve_summary" {
			if err := json.Unmarshal(sc.Bytes(), &sumA); err != nil {
				t.Fatal(err)
			}
			break
		}
		if errMsg, ok := m["error"]; ok && errMsg != nil {
			t.Fatalf("job %v failed in run A: %v", m["id"], errMsg)
		}
		seen[m["id"].(string)]++
		if !kicked && len(seen) >= 3 {
			kicked = true
			// The SIGTERM sequence from main, mid-stream: a short window,
			// then force-cancel. The handler journals what it cancelled.
			go func() { drained <- sA.drain(50 * time.Millisecond) }()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	<-drained
	tsA.Close()
	if !sumA.Interrupted {
		t.Fatalf("run A summary not interrupted: %+v (drain landed too late?)", sumA)
	}
	if len(seen) >= njobs {
		t.Fatalf("run A emitted all %d jobs; nothing left to prove resume with", njobs)
	}
	if sumA.Emitted != len(seen) {
		t.Fatalf("summary emitted=%d but stream carried %d results", sumA.Emitted, len(seen))
	}

	// --- incarnation B: fresh server, same journal dir, same batch ---
	faultinject.SetDefault(prev) // full speed for the resume
	sB := newServer(context.Background(), cfg)
	tsB := httptest.NewServer(sB.handler())
	defer tsB.Close()
	defer sB.cancelRun()

	linesB, sumB, status := analyze(t, tsB.URL, body, map[string]string{"X-Batch-ID": "b1"})
	if status != http.StatusOK {
		t.Fatalf("resume status = %d", status)
	}
	if sumB.Interrupted {
		t.Fatalf("resume run interrupted: %+v", sumB)
	}
	if sumB.Skipped != len(seen) {
		t.Errorf("resume skipped %d jobs, but run A delivered %d", sumB.Skipped, len(seen))
	}
	for _, m := range linesB {
		if m["error"] != nil {
			t.Fatalf("job %v failed in run B: %v", m["id"], m["error"])
		}
		seen[m["id"].(string)]++
	}
	for i := 0; i < njobs; i++ {
		id := fmt.Sprintf("j%d", i)
		if seen[id] != 1 {
			t.Errorf("job %s delivered %d times across the restart, want exactly once", id, seen[id])
		}
	}
}

// TestConcurrentSameBatchConflicts: one batch ID journals one run at a
// time — a second concurrent POST for the same ID is refused instead
// of corrupting the journal.
func TestConcurrentSameBatchConflicts(t *testing.T) {
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	prev := faultinject.SetDefault(faultinject.New(1, faultinject.Rule{
		Point: "batch.dispatch", Kind: faultinject.KindDelay, Every: 1, Delay: 20 * time.Millisecond,
	}))
	defer faultinject.SetDefault(prev)
	_, ts := startTestServer(t, cfg)
	done := make(chan int, 1)
	go func() {
		_, _, status := analyze(t, ts.URL, specBody(20), map[string]string{"X-Batch-ID": "dup"})
		done <- status
	}()
	time.Sleep(30 * time.Millisecond) // first run is inside the batch
	resp, err := http.Post(ts.URL+"/v1/analyze?batch=dup", "application/x-ndjson", strings.NewReader(specBody(2)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent same-batch status = %d, want 409", resp.StatusCode)
	}
	if status := <-done; status != http.StatusOK {
		t.Fatalf("original batch status = %d", status)
	}
}

// TestBatchIDValidation: IDs become journal filenames, so traversal
// shapes are refused.
func TestBatchIDValidation(t *testing.T) {
	cfg := testConfig()
	cfg.JournalDir = t.TempDir()
	_, ts := startTestServer(t, cfg)
	for _, id := range []string{"../evil", "a/b", "x y", strings.Repeat("z", 65)} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(specBody(1)))
		req.Header.Set("X-Batch-ID", id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("batch ID %q status = %d, want 409", id, resp.StatusCode)
		}
	}
	// Journaling without -journal-dir is refused, not silently dropped.
	_, ts2 := startTestServer(t, testConfig())
	resp, err := http.Post(ts2.URL+"/v1/analyze?batch=ok", "application/x-ndjson", strings.NewReader(specBody(1)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("journal-less batch status = %d, want 409", resp.StatusCode)
	}
}
