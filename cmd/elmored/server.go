package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"time"

	"elmore/internal/batch"
	"elmore/internal/faultinject"
	"elmore/internal/resilience"
	"elmore/internal/telemetry"
)

// config is the server's tuning, filled from flags in main.
type config struct {
	Workers     int           // batch workers per request
	Timeout     time.Duration // per-attempt job limit; 0 = none
	Retries     int           // extra attempts for transient failures
	Breaker     int           // per-net consecutive-failure threshold; 0 = off
	Degrade     bool          // elmore-bound fallback for exhausted sim jobs
	Rate        float64       // per-tenant admissions/second; 0 = off
	Burst       float64       // per-tenant bucket capacity
	MaxInFlight int           // process-wide concurrent requests; 0 = off
	MaxTenants  int           // bounded tenant table size
	TenantTrips int           // per-tenant breaker threshold; 0 = off
	MaxDeadline time.Duration // cap on client-requested deadlines
	MaxJobs     int           // max spec lines per /v1/analyze request
	MaxBody     int64         // max request body bytes
	HotTrees    int           // hot-tree LRU capacity; 0 = off
	JournalDir  string        // per-batch resume journals; "" = off
	SLOs        []telemetry.SLO
}

// server is the elmored HTTP state. One instance serves the process
// lifetime; per-request engines are shallow copies sharing its caches.
type server struct {
	cfg     config
	eng     *batch.Engine // template: shared cache, resilience policy
	limiter *resilience.Limiter
	gate    *batch.Gate
	hot     *hotTrees
	start   time.Time

	// runCtx is the server-lifetime context: request contexts derive
	// from it so a drain timeout can force-cancel every in-flight batch
	// at once.
	runCtx    context.Context
	cancelRun context.CancelFunc

	sloMu sync.Mutex
	slo   *telemetry.SLOTracker

	batchMu sync.Mutex
	batches map[string]bool // batch IDs currently journaling
}

// newServer builds the server and its lifetime context from ctx.
func newServer(ctx context.Context, cfg config) *server {
	eng := &batch.Engine{
		Workers:   cfg.Workers,
		Timeout:   cfg.Timeout,
		Cache:     batch.NewCache(),
		NoDegrade: !cfg.Degrade,
	}
	if cfg.Retries > 0 {
		eng.Retry = &resilience.Policy{
			MaxAttempts: cfg.Retries + 1,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			RetryPanics: true,
		}
	}
	if cfg.Breaker > 0 {
		eng.Breaker = &resilience.Breaker{Threshold: cfg.Breaker}
	}
	var tenantBreaker *resilience.Breaker
	if cfg.TenantTrips > 0 {
		tenantBreaker = &resilience.Breaker{Threshold: cfg.TenantTrips}
	}
	runCtx, cancel := context.WithCancel(ctx)
	s := &server{
		cfg: cfg,
		eng: eng,
		limiter: &resilience.Limiter{
			Rate:        cfg.Rate,
			Burst:       cfg.Burst,
			MaxInFlight: cfg.MaxInFlight,
			MaxTenants:  cfg.MaxTenants,
			Breaker:     tenantBreaker,
		},
		gate:      &batch.Gate{},
		hot:       newHotTrees(cfg.HotTrees),
		start:     time.Now(),
		runCtx:    runCtx,
		cancelRun: cancel,
		slo:       telemetry.NewSLOTracker(cfg.SLOs),
		batches:   make(map[string]bool),
	}
	if s.slo != nil {
		s.slo.Prefix = "serve"
	}
	return s
}

// handler returns the server's mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/bound", s.handleBound)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", telemetry.PromHandler{})
	return mux
}

// drain runs the graceful half of shutdown: stop admitting, wait for
// in-flight requests up to the timeout, then force-cancel whatever is
// left so journals re-queue their jobs. Returns nil when everything
// finished inside the window.
func (s *server) drain(timeout time.Duration) error {
	telemetry.C("serve.drains").Inc()
	s.gate.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.gate.Drain(ctx)
	if err != nil {
		// Stragglers: cancel the run context and give them a moment to
		// unwind through the journal path.
		s.cancelRun()
		ctx2, cancel2 := context.WithTimeout(context.Background(), timeout)
		defer cancel2()
		if derr := s.gate.Drain(ctx2); derr == nil {
			err = nil
		}
	}
	s.cancelRun()
	return err
}

// retryAfterSeconds renders d as a ceil'd positive Retry-After value.
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// shed writes the admission rejection: 429 for the tenant's own rate,
// 503 for process capacity or an open tenant breaker, both with
// Retry-After.
func shed(w http.ResponseWriter, rej *resilience.RejectError) {
	telemetry.C("serve.requests_shed").Inc()
	w.Header().Set("Retry-After", retryAfterSeconds(rej.RetryAfter))
	status := http.StatusServiceUnavailable
	if rej.Reason == resilience.RejectRate {
		status = http.StatusTooManyRequests
	}
	httpError(w, status, rej.Error())
}

// tenantOf resolves the request's tenant: X-API-Key header, ?tenant=,
// else "anonymous".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-API-Key"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// deadlineOf parses the client deadline (X-Elmore-Deadline header or
// ?deadline=, a Go duration), capped at the configured maximum. Zero
// means "no client deadline" (the cap still applies).
func (s *server) deadlineOf(r *http.Request) (time.Duration, error) {
	tok := r.Header.Get("X-Elmore-Deadline")
	if tok == "" {
		tok = r.URL.Query().Get("deadline")
	}
	d := s.cfg.MaxDeadline
	if tok != "" {
		v, err := time.ParseDuration(tok)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("bad deadline %q: want a positive Go duration like 500ms", tok)
		}
		if s.cfg.MaxDeadline > 0 && v > s.cfg.MaxDeadline {
			v = s.cfg.MaxDeadline
		}
		d = v
	}
	return d, nil
}

// admit runs the shared front half of every API request: the
// serve.accept fault point, the drain gate, and limiter admission.
// On success the caller owns both cleanups.
func (s *server) admit(w http.ResponseWriter, r *http.Request) (leave func(), adm *resilience.Admission, ok bool) {
	telemetry.C("serve.requests").Inc()
	if err := faultinject.Fire("serve.accept"); err != nil {
		telemetry.C("serve.requests_failed").Inc()
		httpError(w, http.StatusInternalServerError, err.Error())
		return nil, nil, false
	}
	leave, err := s.gate.Enter()
	if err != nil {
		telemetry.C("serve.requests_shed").Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "draining: not admitting new work")
		return nil, nil, false
	}
	telemetry.G("serve.inflight").Set(float64(s.gate.InFlight()))
	if err := faultinject.Fire("serve.admit"); err != nil {
		leave()
		telemetry.C("serve.requests_failed").Inc()
		httpError(w, http.StatusInternalServerError, err.Error())
		return nil, nil, false
	}
	adm, err = s.limiter.Admit(tenantOf(r))
	if err != nil {
		leave()
		var rej *resilience.RejectError
		if errors.As(err, &rej) {
			shed(w, rej)
		} else {
			telemetry.C("serve.requests_failed").Inc()
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return nil, nil, false
	}
	return leave, adm, true
}

// requestCtx derives the batch context: server lifetime (so drain can
// force-cancel), client disconnect, and the request deadline.
func (s *server) requestCtx(r *http.Request, deadline time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(s.runCtx)
	stopAfter := context.AfterFunc(r.Context(), cancel)
	if deadline > 0 {
		ctx2, cancelT := context.WithTimeout(ctx, deadline)
		return ctx2, func() { cancelT(); stopAfter(); cancel() }
	}
	return ctx, func() { stopAfter(); cancel() }
}

// requestEngine copies the template engine, tightening the per-job
// timeout to the request deadline so a slow job can never outlive its
// request and pin a worker.
func (s *server) requestEngine(deadline time.Duration) *batch.Engine {
	eng := *s.eng
	if deadline > 0 && (eng.Timeout <= 0 || deadline < eng.Timeout) {
		eng.Timeout = deadline
		telemetry.C("serve.deadline_truncations").Inc()
	}
	return &eng
}

// batchIDPat is the allowed shape of a client batch ID: it becomes a
// journal filename, so it must not traverse paths.
var batchIDPat = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// openBatchJournal claims the request's batch ID (X-Batch-ID header or
// ?batch=) and opens its journal under -journal-dir. All-nil when the
// request did not ask for journaling.
func (s *server) openBatchJournal(r *http.Request) (jr *batch.Journal, rp *batch.Replay, release func(), err error) {
	id := r.Header.Get("X-Batch-ID")
	if id == "" {
		id = r.URL.Query().Get("batch")
	}
	if id == "" {
		return nil, nil, nil, nil
	}
	if s.cfg.JournalDir == "" {
		return nil, nil, nil, fmt.Errorf("batch %q: server started without -journal-dir", id)
	}
	if !batchIDPat.MatchString(id) || strings.Contains(id, "..") {
		return nil, nil, nil, fmt.Errorf("batch ID must match %s", batchIDPat)
	}
	s.batchMu.Lock()
	if s.batches[id] {
		s.batchMu.Unlock()
		return nil, nil, nil, fmt.Errorf("batch %q is already running", id)
	}
	s.batches[id] = true
	s.batchMu.Unlock()
	release = func() {
		s.batchMu.Lock()
		delete(s.batches, id)
		s.batchMu.Unlock()
	}
	jr, rp, err = batch.OpenJournal(filepath.Join(s.cfg.JournalDir, id+".journal"))
	if err != nil {
		release()
		return nil, nil, nil, err
	}
	return jr, rp, release, nil
}

// flushWriter flushes the response after every NDJSON line so results
// stream to the client as jobs finish; a write error cancels the batch
// through cancel, so a hung-up client releases its workers.
type flushWriter struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if fw.err != nil {
		return 0, fw.err
	}
	n, err := fw.w.Write(p)
	if err == nil {
		err = fw.rc.Flush()
	}
	if err != nil {
		fw.err = err
		fw.cancel()
	}
	return n, err
}

// serveSummary is the trailing NDJSON line of a /v1/analyze response:
// the client's signal that the stream is complete (or was interrupted,
// in which case re-POSTing the same batch resumes it).
type serveSummary struct {
	Record      string `json:"record"` // "serve_summary"
	Total       int    `json:"total"`
	Emitted     int    `json:"emitted"`
	Failed      int    `json:"failed"`
	Degraded    int    `json:"degraded"`
	Skipped     int    `json:"skipped"`
	Requeued    int    `json:"requeued"`
	Interrupted bool   `json:"interrupted,omitempty"`
	ElapsedNS   int64  `json:"elapsed_ns"`
}

// observeSLO scores one finished request against the serve objectives
// and republishes the gauges. The tracker is single-goroutine by
// contract, hence the mutex.
func (s *server) observeSLO(d time.Duration, failed bool) {
	if s.slo == nil {
		return
	}
	s.sloMu.Lock()
	s.slo.Observe(d, failed)
	s.slo.Publish()
	s.sloMu.Unlock()
}

// handleAnalyze streams batch results: NDJSON specs in, NDJSON result
// records out, one trailing serve_summary line.
func (s *server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST NDJSON job specs to /v1/analyze")
		return
	}
	leave, adm, ok := s.admit(w, r)
	if !ok {
		return
	}
	began := time.Now()
	failed := true // flipped on the success path; feeds SLO + tenant breaker
	defer func() {
		adm.Release(failed)
		leave()
		telemetry.G("serve.inflight").Set(float64(s.gate.InFlight()))
		s.observeSLO(time.Since(began), failed)
	}()

	deadline, err := s.deadlineOf(r)
	if err != nil {
		failed = false // client error, not the tenant's breaker's business
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := faultinject.Fire("serve.decode"); err != nil {
		telemetry.C("serve.requests_failed").Inc()
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	specs, err := batch.ReadSpecs(body)
	if err != nil {
		failed = false
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err.Error())
		return
	}
	if s.cfg.MaxJobs > 0 && len(specs) > s.cfg.MaxJobs {
		failed = false
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("%d jobs exceed the per-request limit of %d", len(specs), s.cfg.MaxJobs))
		return
	}
	jr, rp, releaseBatch, err := s.openBatchJournal(r)
	if err != nil {
		failed = false
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	if releaseBatch != nil {
		defer releaseBatch()
	}
	if jr != nil {
		defer jr.Close()
	}

	ctx, cancel := s.requestCtx(r, deadline)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	fw := &flushWriter{w: w, rc: http.NewResponseController(w), cancel: cancel}

	st, runErr := batch.RunSpecsOpts(ctx, s.requestEngine(deadline), nil, fw, batch.SpecRunOptions{
		Specs:   specs,
		Loader:  s.hot.loader(nil),
		Journal: jr,
		Replay:  rp,
	})
	telemetry.C("serve.batches").Inc()
	telemetry.C("serve.jobs").Add(int64(st.Emitted))
	if runErr != nil {
		telemetry.C("serve.requests_failed").Inc()
	}
	// The summary goes out even on an interrupted run: everything
	// already written (and journaled) is delivered, and Interrupted
	// tells the client to re-POST the batch to resume.
	sum := serveSummary{
		Record: "serve_summary", Total: st.Total, Emitted: st.Emitted,
		Failed: st.Failed, Degraded: st.Degraded, Skipped: st.Skipped,
		Requeued: st.Requeued, Interrupted: runErr != nil,
		ElapsedNS: time.Since(began).Nanoseconds(),
	}
	b, _ := json.Marshal(sum)
	fw.Write(append(b, '\n'))
	failed = runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded)
}

// handleBound is the one-shot endpoint: one JSON job spec in, one JSON
// result record out. The same admission, deadline, and hot-tree paths
// as /v1/analyze, without streaming.
func (s *server) handleBound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST one JSON job spec to /v1/bound")
		return
	}
	leave, adm, ok := s.admit(w, r)
	if !ok {
		return
	}
	began := time.Now()
	failed := true
	defer func() {
		adm.Release(failed)
		leave()
		telemetry.G("serve.inflight").Set(float64(s.gate.InFlight()))
		s.observeSLO(time.Since(began), failed)
	}()

	deadline, err := s.deadlineOf(r)
	if err != nil {
		failed = false
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := faultinject.Fire("serve.decode"); err != nil {
		telemetry.C("serve.requests_failed").Inc()
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var spec batch.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		failed = false
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := s.requestCtx(r, deadline)
	defer cancel()
	job := spec.JobLoader(nil, 0, s.hot.loader(nil))
	res := s.requestEngine(deadline).Run(ctx, []batch.Job{job})
	telemetry.C("serve.jobs").Inc()
	rec := batch.Record(res[0])
	failed = res[0].Err != nil && ctx.Err() == nil
	if res[0].Err != nil {
		telemetry.C("serve.requests_failed").Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	if res[0].Err != nil {
		status = http.StatusUnprocessableEntity
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(rec)
}

// healthz is the readiness probe: 200 while serving, 503 once draining
// (so a balancer stops routing here during shutdown), with a small
// process snapshot either way.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	draining := s.gate.Draining()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"status":         map[bool]string{false: "ok", true: "draining"}[draining],
		"inflight":       s.gate.InFlight(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
		"heap_bytes":     ms.HeapAlloc,
		"hot_trees":      s.hot.Len(),
	})
}
