// Command elmored is the persistent delay-bound service: the batch
// engine, fingerprint caches, breaker, journal, and SLO tracker behind
// an HTTP API, hardened for production load.
//
// Endpoints:
//
//	POST /v1/analyze   NDJSON job specs in, NDJSON result records out
//	                   (streamed per job, trailing serve_summary line).
//	                   ?batch=ID / X-Batch-ID journals the run under
//	                   -journal-dir; re-POSTing the same batch after an
//	                   interruption resumes it exactly-once.
//	POST /v1/bound     one JSON job spec in, one JSON result out.
//	GET  /healthz      readiness: 200 serving, 503 draining.
//	GET  /metrics      Prometheus exposition of the process registry.
//
// Robustness model: per-tenant token-bucket admission (X-API-Key or
// ?tenant=) sheds overload with 429/503 + Retry-After instead of
// queueing; client deadlines (X-Elmore-Deadline or ?deadline=) are
// capped by -max-deadline and propagated into per-job timeouts; a
// hot-tree LRU skips parse+compile for repeated nets; SIGTERM drains
// gracefully — stop admitting, finish or journal in-flight batches,
// flush the flight recorder, exit 0 — and a restart resumes journaled
// batches. SIGQUIT (with -flight-dump) dumps the flight ring without
// exiting, as in the one-shot CLIs.
//
//	elmored -addr :8080 -rate 50 -burst 100 -max-inflight 64 \
//	        -journal-dir /var/lib/elmored -slo p99=250ms \
//	        -flight-dump flight.ndjson
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"elmore/internal/cliutil"
	"elmore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "elmored:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("elmored", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful-drain window after SIGTERM before in-flight batches are cancelled (journaled batches resume on restart)")
		sloSpec      = fs.String("slo", "", "request latency objectives like `p99=250ms`; published as serve.slo.* gauges")
	)
	fs.IntVar(&cfg.Workers, "workers", 0, "batch workers per request (0 = GOMAXPROCS)")
	fs.DurationVar(&cfg.Timeout, "timeout", 0, "per-attempt job time limit (0 = none; client deadlines tighten it per request)")
	fs.IntVar(&cfg.Retries, "retries", 0, "retry transiently failing jobs up to `n` extra times")
	fs.IntVar(&cfg.Breaker, "breaker", 0, "cut off a net after `n` consecutive transient failures (0 = off)")
	fs.BoolVar(&cfg.Degrade, "degrade", true, "answer exhausted sim jobs with the elmore-bound interval instead of an error")
	fs.Float64Var(&cfg.Rate, "rate", 0, "per-tenant sustained admissions per second (0 = unlimited)")
	fs.Float64Var(&cfg.Burst, "burst", 0, "per-tenant admission burst (0 = max(rate, 1))")
	fs.IntVar(&cfg.MaxInFlight, "max-inflight", 0, "process-wide concurrent request cap (0 = unlimited)")
	fs.IntVar(&cfg.MaxTenants, "max-tenants", 0, "bound on tracked tenant buckets (0 = 1024)")
	fs.IntVar(&cfg.TenantTrips, "tenant-breaker", 0, "cut off a tenant after `n` consecutive failed requests (0 = off)")
	fs.DurationVar(&cfg.MaxDeadline, "max-deadline", 2*time.Minute, "cap on client-requested deadlines (and the default when none is sent)")
	fs.IntVar(&cfg.MaxJobs, "max-jobs", 10000, "max spec lines per /v1/analyze request")
	fs.Int64Var(&cfg.MaxBody, "max-body", 32<<20, "max request body bytes")
	fs.IntVar(&cfg.HotTrees, "hot-trees", 256, "hot-tree LRU capacity: repeated nets skip parse+compile (0 = off)")
	fs.StringVar(&cfg.JournalDir, "journal-dir", "", "directory for per-batch resume journals (empty disables X-Batch-ID journaling)")
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("elmored"))
		return nil
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if cfg.Rate < 0 || cfg.Burst < 0 || cfg.MaxInFlight < 0 || cfg.MaxTenants < 0 ||
		cfg.Workers < 0 || cfg.Timeout < 0 || cfg.Retries < 0 || cfg.Breaker < 0 ||
		cfg.TenantTrips < 0 || cfg.MaxDeadline < 0 || cfg.MaxJobs < 0 || cfg.MaxBody < 0 ||
		cfg.HotTrees < 0 || *drainTimeout < 0 {
		return fmt.Errorf("flag values must be >= 0")
	}
	if cfg.SLOs, err = telemetry.ParseSLOs(*sloSpec); err != nil {
		return fmt.Errorf("-slo: %w", err)
	}
	if cfg.JournalDir != "" {
		if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
			return fmt.Errorf("-journal-dir: %w", err)
		}
	}

	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()

	// The one-shot CLIs leave metrics disabled (nil registry, zero cost)
	// unless an observability flag asks for them; a server exposing
	// /metrics must always have a live registry behind it.
	if telemetry.Default() == nil {
		reg := telemetry.NewRegistry()
		telemetry.InstallStandardHelp(reg)
		prev := telemetry.SetDefault(reg)
		defer telemetry.SetDefault(prev)
	}

	s := newServer(sess.Context(), cfg)
	srv := &http.Server{Handler: s.handler(), ReadHeaderTimeout: 10 * time.Second}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "elmored listening on http://%s (analyze=/v1/analyze bound=/v1/bound health=/healthz metrics=/metrics)\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(stderr, "elmored: %v: draining (window %v)\n", sig, *drainTimeout)
	}

	// Graceful drain: stop admitting (healthz flips to 503, the gate
	// rejects), let in-flight batches finish — or, past the window,
	// cancel them so their journals re-queue the remainder — then flush
	// the flight recorder and exit 0. Nothing accepted is ever lost:
	// it was either streamed + journaled done, or will be re-queued.
	drainErr := s.drain(*drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)
	telemetry.FlightForceDump("sigterm")
	if drainErr != nil {
		fmt.Fprintf(stderr, "elmored: drain window expired; in-flight batches journaled for resume\n")
	} else {
		fmt.Fprintln(stderr, "elmored: drained clean")
	}
	return nil
}
