package main

import (
	"container/list"
	"hash/fnv"
	"sync"

	"elmore/internal/batch"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
)

// hotTrees is the serve-mode hot-tree LRU: repeated nets skip
// parse+compile. It is two-level — a source-hash index (the bytes the
// client sent: a file path or an inline deck) in front of entries keyed
// by rctree.Fingerprint — so two textually different decks describing
// the same tree share one entry, and the cache key agrees with the
// moment/plan caches downstream. Cached trees are shared across
// requests and must be treated as immutable (serve jobs only read).
type hotTrees struct {
	mu    sync.Mutex
	max   int
	bySrc map[uint64]uint64        // source hash -> tree fingerprint
	byFP  map[uint64]*list.Element // fingerprint -> LRU element
	lru   *list.List               // front = most recently used
}

// hotEntry is one cached tree plus the source hashes that resolve to
// it, so eviction can drop its index entries too.
type hotEntry struct {
	fp   uint64
	tree *rctree.Tree
	srcs []uint64
}

// newHotTrees returns an LRU holding at most max trees; max <= 0
// disables caching (every load falls through).
func newHotTrees(max int) *hotTrees {
	return &hotTrees{
		max:   max,
		bySrc: make(map[uint64]uint64),
		byFP:  make(map[uint64]*list.Element),
		lru:   list.New(),
	}
}

// srcHash fingerprints the client's net reference.
func srcHash(net, netlist string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(net))
	h.Write([]byte{0})
	h.Write([]byte(netlist))
	return h.Sum64()
}

// loader wraps fallback (nil = batch.DefaultTreeLoader) with the LRU.
func (c *hotTrees) loader(fallback batch.TreeLoader) batch.TreeLoader {
	if fallback == nil {
		fallback = batch.DefaultTreeLoader
	}
	if c == nil || c.max <= 0 {
		return fallback
	}
	return func(net, netlist string) (*rctree.Tree, error) {
		src := srcHash(net, netlist)
		c.mu.Lock()
		if fp, ok := c.bySrc[src]; ok {
			if el, ok := c.byFP[fp]; ok {
				c.lru.MoveToFront(el)
				tree := el.Value.(*hotEntry).tree
				c.mu.Unlock()
				telemetry.C("serve.hot_tree_hits").Inc()
				return tree, nil
			}
		}
		c.mu.Unlock()

		tree, err := fallback(net, netlist)
		if err != nil {
			return nil, err
		}
		telemetry.C("serve.hot_tree_misses").Inc()
		fp := tree.Fingerprint()

		c.mu.Lock()
		defer c.mu.Unlock()
		if el, ok := c.byFP[fp]; ok {
			// Another source already produced this exact tree: share the
			// entry, serve the canonical copy.
			e := el.Value.(*hotEntry)
			if _, indexed := c.bySrc[src]; !indexed {
				c.bySrc[src] = fp
				e.srcs = append(e.srcs, src)
			}
			c.lru.MoveToFront(el)
			return e.tree, nil
		}
		e := &hotEntry{fp: fp, tree: tree, srcs: []uint64{src}}
		c.bySrc[src] = fp
		c.byFP[fp] = c.lru.PushFront(e)
		for c.lru.Len() > c.max {
			back := c.lru.Back()
			victim := back.Value.(*hotEntry)
			c.lru.Remove(back)
			delete(c.byFP, victim.fp)
			for _, s := range victim.srcs {
				delete(c.bySrc, s)
			}
			telemetry.C("serve.hot_tree_evictions").Inc()
		}
		return tree, nil
	}
}

// Len reports the number of cached trees.
func (c *hotTrees) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
