package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elmore/internal/faultinject"
	"elmore/internal/telemetry"
)

const testDeck = `Vin in 0 1
R1 in a 100
C1 a 0 20f
R2 a z 150
C2 z 0 30f
`

// specLine renders one inline-netlist job spec.
func specLine(id string) string {
	b, _ := json.Marshal(map[string]any{"id": id, "netlist": testDeck, "sinks": []string{"z"}})
	return string(b)
}

func specBody(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(specLine(fmt.Sprintf("j%d", i)))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func testConfig() config {
	return config{
		Workers: 2, Degrade: true, MaxDeadline: time.Minute,
		MaxJobs: 1000, MaxBody: 1 << 20, HotTrees: 8,
	}
}

func startTestServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(context.Background(), cfg)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.cancelRun)
	return s, ts
}

// analyze POSTs body and returns the result lines and trailing summary.
func analyze(t *testing.T, url, body string, hdr map[string]string) (lines []map[string]any, sum serveSummary, status int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if m["record"] == "serve_summary" {
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines, sum, resp.StatusCode
}

func TestAnalyzeStreamsResults(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	lines, sum, status := analyze(t, ts.URL, specBody(5), nil)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if len(lines) != 5 || sum.Total != 5 || sum.Emitted != 5 || sum.Failed != 0 || sum.Interrupted {
		t.Fatalf("lines=%d summary=%+v", len(lines), sum)
	}
	for i, m := range lines {
		if m["error"] != nil {
			t.Errorf("job %d error: %v", i, m["error"])
		}
		if m["id"] != fmt.Sprintf("j%d", i) {
			t.Errorf("out-of-order result %d: %v", i, m["id"])
		}
	}
}

func TestBoundOneShot(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	resp, err := http.Post(ts.URL+"/v1/bound", "application/json", strings.NewReader(specLine("one")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rec struct {
		ID    string `json:"id"`
		Error string `json:"error"`
		Sinks []struct {
			Node   string  `json:"node"`
			Elmore float64 `json:"elmore"`
			Lower  float64 `json:"lower"`
		} `json:"sinks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Error != "" || len(rec.Sinks) != 1 || rec.Sinks[0].Node != "z" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Sinks[0].Elmore <= 0 || rec.Sinks[0].Lower > rec.Sinks[0].Elmore {
		t.Fatalf("bound ordering violated: %+v", rec.Sinks[0])
	}
}

func TestBoundRejectsMalformedSpec(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	resp, err := http.Post(ts.URL+"/v1/bound", "application/json", strings.NewReader(`{"nope":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field spec status = %d, want 400", resp.StatusCode)
	}
}

func TestRateShed429WithRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.Rate, cfg.Burst = 1, 2
	_, ts := startTestServer(t, cfg)
	// The tenant's burst admits two; the third inside the same second
	// must shed with 429 + Retry-After.
	statuses := make([]int, 3)
	for i := range statuses {
		resp, err := http.Post(ts.URL+"/v1/bound?tenant=acme", "application/json", strings.NewReader(specLine("r")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		statuses[i] = resp.StatusCode
		if i == 2 {
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("statuses = %v, want the third to be 429", statuses)
			}
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Fatal("shed response missing Retry-After")
			}
		}
	}
	if statuses[0] != http.StatusOK || statuses[1] != http.StatusOK {
		t.Fatalf("burst requests shed: %v", statuses)
	}
	// Another tenant is unaffected.
	resp, err := http.Post(ts.URL+"/v1/bound?tenant=globex", "application/json", strings.NewReader(specLine("r")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh tenant status = %d", resp.StatusCode)
	}
}

func TestCapacityShed503WithRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.MaxInFlight = 1
	_, ts := startTestServer(t, cfg)
	// Hold the only slot with a request slowed inside the handler.
	prev := faultinject.SetDefault(faultinject.New(1, faultinject.Rule{
		Point: "serve.decode", Kind: faultinject.KindDelay, Every: 1, Delay: 300 * time.Millisecond, Limit: 1,
	}))
	defer faultinject.SetDefault(prev)
	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/bound?tenant=slow", "application/json", strings.NewReader(specLine("s")))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request take the slot
	resp, err := http.Post(ts.URL+"/v1/bound?tenant=fast", "application/json", strings.NewReader(specLine("f")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("capacity shed missing Retry-After")
	}
	if got := <-done; got != http.StatusOK {
		t.Fatalf("slot-holding request status = %d", got)
	}
}

func TestDeadlineRejectsMalformed(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	resp, err := http.Post(ts.URL+"/v1/bound?deadline=banana", "application/json", strings.NewReader(specLine("d")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad deadline status = %d, want 400", resp.StatusCode)
	}
}

func TestDeadlineCutsSlowBatch(t *testing.T) {
	prev := faultinject.SetDefault(faultinject.New(1, faultinject.Rule{
		Point: "batch.dispatch", Kind: faultinject.KindDelay, Every: 1, Delay: 50 * time.Millisecond,
	}))
	defer faultinject.SetDefault(prev)
	_, ts := startTestServer(t, testConfig())
	start := time.Now()
	_, sum, status := analyze(t, ts.URL, specBody(40), map[string]string{"X-Elmore-Deadline": "100ms"})
	if status != http.StatusOK {
		t.Fatalf("status = %d (stream responses are 200 with an interrupted summary)", status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not cut the batch: took %v", elapsed)
	}
	// 40 jobs x 50ms on 2 workers ≈ 1s of work against a 100ms deadline:
	// the run must end early, either interrupted or with deadline errors.
	if !sum.Interrupted && sum.Failed == 0 {
		t.Fatalf("slow batch beat a 100ms deadline: %+v", sum)
	}
}

func TestHotTreeLRUSkipsReparse(t *testing.T) {
	reg := telemetry.NewRegistry()
	prevReg := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prevReg)
	s, ts := startTestServer(t, testConfig())
	for i := 0; i < 3; i++ {
		if _, sum, _ := analyze(t, ts.URL, specBody(2), nil); sum.Failed != 0 {
			t.Fatalf("round %d failed: %+v", i, sum)
		}
	}
	if got := s.hot.Len(); got != 1 {
		t.Fatalf("hot-tree entries = %d, want 1 (all jobs share one deck)", got)
	}
	if hits := reg.Counter("serve.hot_tree_hits").Value(); hits < 4 {
		t.Fatalf("hot_tree_hits = %d, want >= 4 (6 loads, 1 parse)", hits)
	}
	if misses := reg.Counter("serve.hot_tree_misses").Value(); misses != 1 {
		t.Fatalf("hot_tree_misses = %d, want 1", misses)
	}
}

func TestDrainingShedsAndHealthzFlips(t *testing.T) {
	s, ts := startTestServer(t, testConfig())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy healthz = %d", resp.StatusCode)
	}
	if err := s.drain(time.Second); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/bound", "application/json", strings.NewReader(specLine("late")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("post-drain request = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

func TestMaxJobsRejected(t *testing.T) {
	cfg := testConfig()
	cfg.MaxJobs = 3
	_, ts := startTestServer(t, cfg)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(specBody(5)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch status = %d, want 413", resp.StatusCode)
	}
}

func TestInjectedAcceptFault(t *testing.T) {
	prev := faultinject.SetDefault(faultinject.New(1, faultinject.Rule{
		Point: "serve.accept", Kind: faultinject.KindError, Every: 1, Limit: 1,
	}))
	defer faultinject.SetDefault(prev)
	s, ts := startTestServer(t, testConfig())
	resp, err := http.Post(ts.URL+"/v1/bound", "application/json", strings.NewReader(specLine("x")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected accept fault status = %d, want 500", resp.StatusCode)
	}
	// The fault path must not leak gate or limiter slots.
	if s.gate.InFlight() != 0 || s.limiter.InFlight() != 0 {
		t.Fatalf("leaked slots: gate=%d limiter=%d", s.gate.InFlight(), s.limiter.InFlight())
	}
}
