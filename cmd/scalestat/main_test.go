package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestParseWorkers(t *testing.T) {
	got, err := parseWorkers("1, 2,8")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 8}) {
		t.Fatalf("parseWorkers = %v, %v", got, err)
	}
	if _, err := parseWorkers("1,zero"); err == nil {
		t.Fatal("bad count must error")
	}
	if _, err := parseWorkers("0"); err == nil {
		t.Fatal("zero workers must error")
	}
	def, err := parseWorkers("")
	if err != nil || len(def) == 0 {
		t.Fatalf("default sweep: %v, %v", def, err)
	}
	if def[0] != 1 || def[len(def)-1] != runtime.GOMAXPROCS(0) {
		t.Fatalf("default sweep %v must go 1..GOMAXPROCS", def)
	}
}

func TestScalestatReportAndLedger(t *testing.T) {
	dir := t.TempDir()
	repPath := filepath.Join(dir, "report.json")
	benchPath := filepath.Join(dir, "bench.json")

	err := run([]string{
		"-nets", "120", "-nodes", "10", "-workers", "1,2",
		"-share", "12",
		"-o", repPath, "-bench-out", benchPath,
		"-check",
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not parseable: %v", err)
	}
	if rep.Report != "scaling" || rep.Nets != 120 || rep.Distinct != 12 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	if len(rep.Steps) != 2 || rep.Steps[0].Workers != 1 || rep.Steps[1].Workers != 2 {
		t.Fatalf("steps wrong: %+v", rep.Steps)
	}
	for _, st := range rep.Steps {
		if len(st.WorkerTable) != st.Workers {
			t.Errorf("workers=%d: worker table has %d rows", st.Workers, len(st.WorkerTable))
		}
		if st.Attribution.Accounted < 0.95 {
			t.Errorf("workers=%d: accounted %.3f < 0.95", st.Workers, st.Attribution.Accounted)
		}
		l := st.Latency
		if !(0 < l.Max && l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
			t.Errorf("workers=%d: latency quantiles missing or unordered: %+v", st.Workers, l)
		}
		var jobs int64
		for _, row := range st.WorkerTable {
			jobs += row.Jobs
		}
		if jobs != int64(rep.Nets) {
			t.Errorf("workers=%d: table jobs sum %d != %d", st.Workers, jobs, rep.Nets)
		}
	}
	// 12 distinct trees over 120 jobs: the single-worker step must see
	// 108 cache hits.
	var hits int64
	for _, row := range rep.Steps[0].WorkerTable {
		hits += row.CacheHits
	}
	if hits != 108 {
		t.Errorf("cache hits = %d, want 108 (120 jobs, 12 distinct trees)", hits)
	}
	if rep.Steps[0].Speedup != 1 {
		t.Errorf("first step speedup = %v, want 1 (it is the baseline)", rep.Steps[0].Speedup)
	}

	// The ledger must carry one benchjson-style entry per step.
	braw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var led benchLedger
	if err := json.Unmarshal(braw, &led); err != nil {
		t.Fatalf("ledger not parseable: %v", err)
	}
	for _, name := range []string{"Scalestat/workers=1", "Scalestat/workers=2"} {
		e := led.Benchmarks[name]
		if e == nil || e.After == nil || e.After.NsOp <= 0 {
			t.Errorf("ledger entry %s missing or empty: %+v", name, e)
		}
	}
}

func TestScalestatRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nets", "0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("-nets 0 must error")
	}
	if err := run([]string{"-workers", "1,-2"}, io.Discard, io.Discard); err == nil {
		t.Fatal("negative worker count must error")
	}
	if err := run([]string{"extra-arg"}, io.Discard, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "usage") {
		t.Fatalf("positional args must error with usage, got %v", err)
	}
}
