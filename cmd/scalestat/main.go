// Command scalestat diagnoses batch scaling: it runs the same synthetic
// bound-analysis workload across a sweep of worker counts and reports
// where each configuration's time went — per-worker busy/idle/stall/
// lock-wait attribution from the engine's accounting, per-job latency
// quantiles (p50/p95/p99/max from a bounded-memory sketch), plus GC and
// scheduler figures from the runtime/metrics sampler. The output is a
// machine-readable scaling report; the question it answers is "why is
// the throughput curve flat", bucket by bucket, before anyone starts
// optimizing.
//
// Usage:
//
//	scalestat                                # 10k nets, workers 1..GOMAXPROCS
//	scalestat -nets 500 -workers 1,2,4 -o report.json
//	scalestat -share 64                      # 64 distinct nets: exercises the cache
//	scalestat -bench-out BENCH_scale.json    # benchjson-compatible ledger artifact
//	scalestat -nets 200 -workers 1,2 -check  # CI smoke: validate own report
//
// The workload mirrors BenchmarkBatch10kNets (random trees of 24..40
// nodes) so reports are comparable with the committed BENCH ledgers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"elmore/internal/batch"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "scalestat:", err)
		os.Exit(1)
	}
}

// report is the top-level scaling report document.
type report struct {
	Report     string  `json:"report"` // "scaling"
	Nets       int     `json:"nets"`
	Distinct   int     `json:"distinct_nets"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Steps      []*step `json:"steps"`
}

// step is one worker-count configuration of the sweep.
type step struct {
	Workers       int              `json:"workers"`
	ElapsedMS     float64          `json:"elapsed_ms"`
	JobsPerSec    float64          `json:"jobs_per_sec"`
	Speedup       float64          `json:"speedup"`    // vs the first step
	Efficiency    float64          `json:"efficiency"` // parallel efficiency: Σbusy/(workers×wall)
	Latency       latencyQuantiles `json:"latency_ms"`
	Attribution   attribution      `json:"attribution"`
	ReorderPeak   int              `json:"reorder_peak"`
	ReorderStalls int64            `json:"reorder_stalls"`
	Runtime       runtimeDelta     `json:"runtime"`
	WorkerTable   []workerRow      `json:"worker_table"`
}

// latencyQuantiles is the per-job latency distribution of one step in
// milliseconds, read from a bounded-memory telemetry.DurationSketch
// (~1% relative error; max is exact). Contention shows up here before
// it shows up in throughput: a flat jobs/sec curve with a growing p99
// means the tail is absorbing the added workers.
type latencyQuantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// attribution tiles the step's aggregate worker wall time
// (workers × per-worker wall) into fractions. busy excludes lock_wait,
// so the four buckets plus the unaccounted remainder sum to ~1.
type attribution struct {
	Busy      float64 `json:"busy"`      // computing jobs (excluding lock wait)
	LockWait  float64 `json:"lock_wait"` // blocked on the shared cache
	Idle      float64 `json:"idle"`      // waiting for work
	Stall     float64 `json:"stall"`     // reorder-buffer backpressure
	Accounted float64 `json:"accounted"` // busy+lock_wait+idle+stall
}

// runtimeDelta is what the Go runtime did during the step (differences
// of two telemetry.ReadRuntime snapshots).
type runtimeDelta struct {
	GCCycles    int64   `json:"gc_cycles"`
	GCPauseMS   float64 `json:"gc_pause_ms"`
	GCCPUMS     float64 `json:"gc_cpu_ms"`
	MutexWaitMS float64 `json:"mutex_wait_ms"`
}

// workerRow is one worker's accounting within a step.
type workerRow struct {
	Worker     int     `json:"worker"`
	Jobs       int64   `json:"jobs"`
	BusyMS     float64 `json:"busy_ms"`
	IdleMS     float64 `json:"idle_ms"`
	StallMS    float64 `json:"stall_ms"`
	LockWaitMS float64 `json:"lock_wait_ms"`
	CacheHits  int64   `json:"cache_hits"`
	Accounted  float64 `json:"accounted"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("scalestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nets := fs.Int("nets", 10000, "number of synthetic nets per step")
	nodes := fs.Int("nodes", 24, "base node count per net (actual: base + i%17, matching BenchmarkBatch10kNets)")
	seed := fs.Int64("seed", 1, "base RNG seed for the synthetic nets")
	share := fs.Int("share", 0, "number of distinct nets; 0 = all distinct (cache-cold), N = jobs cycle over N trees (cache-hot)")
	workersFlag := fs.String("workers", "", "comma-separated worker counts to sweep (default 1,2,4,... up to GOMAXPROCS)")
	out := fs.String("o", "", "write the scaling report JSON to `file` (default stdout)")
	benchOut := fs.String("bench-out", "", "also write a benchjson-compatible ledger to `file`")
	check := fs.Bool("check", false, "validate the report (finite efficiency, accounted fraction) and fail on violation")
	accountedMin := fs.Float64("accounted-min", 0.95, "-check: minimum accounted fraction of worker wall time")
	efficiencyMin := fs.Float64("efficiency-min", 0, "-check: minimum parallel efficiency per step (0 = off; skipped below -min-cpus)")
	speedupMin := fs.Float64("speedup-min", 0, "-check: minimum speedup as a fraction of the step's workers, e.g. 0.5 (0 = off; skipped below -min-cpus)")
	lockwaitMax := fs.Float64("lockwait-max", 1, "-check: maximum lock-wait share of attributed worker time (1 = off; skipped below -min-cpus)")
	minCPUs := fs.Int("min-cpus", 4, "-check: enforce the scaling floors only when NumCPU >= `n`, so single-core runners stay green")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: scalestat [flags] (run scalestat -h)")
	}
	if *nets <= 0 {
		return fmt.Errorf("-nets must be > 0, got %d", *nets)
	}

	sweep, err := parseWorkers(*workersFlag)
	if err != nil {
		return err
	}

	distinct := *nets
	if *share > 0 && *share < distinct {
		distinct = *share
	}
	trees := make([]*rctree.Tree, distinct)
	for i := range trees {
		trees[i] = topo.Random(*seed+int64(i), topo.RandomOptions{N: *nodes + i%17})
	}
	jobs := make([]batch.Job, *nets)
	for i := range jobs {
		jobs[i] = batch.Job{
			ID:  fmt.Sprintf("net%d", i),
			Net: &batch.NetJob{Tree: trees[i%distinct]},
		}
	}

	rep := &report{
		Report:     "scaling",
		Nets:       *nets,
		Distinct:   distinct,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range sweep {
		st, err := runStep(jobs, w)
		if err != nil {
			return err
		}
		rep.Steps = append(rep.Steps, st)
		fmt.Fprintf(stderr, "scalestat: workers=%d elapsed=%.1fms efficiency=%.2f accounted=%.2f\n",
			w, st.ElapsedMS, st.Efficiency, st.Attribution.Accounted)
	}
	if base := rep.Steps[0].ElapsedMS; base > 0 {
		for _, st := range rep.Steps {
			if st.ElapsedMS > 0 {
				st.Speedup = round3(base / st.ElapsedMS)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
	} else {
		stdout.Write(buf)
	}
	if *benchOut != "" {
		if err := writeBenchLedger(*benchOut, rep); err != nil {
			return err
		}
	}
	if *check {
		floors := checkFloors{
			AccountedMin:  *accountedMin,
			EfficiencyMin: *efficiencyMin,
			SpeedupMin:    *speedupMin,
			LockWaitMax:   *lockwaitMax,
		}
		if runtime.NumCPU() < *minCPUs {
			// The scaling floors measure parallel hardware; on a box
			// with fewer cores than -min-cpus they would fail for
			// reasons the code cannot fix, so they are skipped — the
			// structural checks (finiteness, accounted fraction) still
			// run everywhere.
			if floors.EfficiencyMin > 0 || floors.SpeedupMin > 0 || floors.LockWaitMax < 1 {
				fmt.Fprintf(stderr, "scalestat: NumCPU=%d < %d: scaling floors skipped\n", runtime.NumCPU(), *minCPUs)
			}
			floors.EfficiencyMin, floors.SpeedupMin, floors.LockWaitMax = 0, 0, 1
		}
		if err := validate(rep, floors); err != nil {
			return err
		}
		fmt.Fprintln(stderr, "scalestat: check ok")
	}
	return nil
}

// checkFloors bundles the -check thresholds. AccountedMin always
// applies; the other three are the scaling floors gated on -min-cpus.
type checkFloors struct {
	AccountedMin  float64
	EfficiencyMin float64 // 0 disables
	SpeedupMin    float64 // fraction of workers; 0 disables
	LockWaitMax   float64 // share of attributed time; >= 1 disables
}

// runStep executes the workload once at the given worker count, with a
// fresh registry and cache so steps do not contaminate each other, and
// runtime snapshots bracketing the run.
func runStep(jobs []batch.Job, workers int) (*step, error) {
	reg := telemetry.NewRegistry()
	prev := telemetry.SetDefault(reg)
	defer telemetry.SetDefault(prev)

	var ps *batch.PoolStats
	eng := &batch.Engine{
		Workers: workers,
		Cache:   batch.NewCache(),
		OnStats: func(rs batch.PoolStats) { ps = &rs },
	}
	runtime.GC() // settle the heap so GC deltas belong to this step
	before := telemetry.ReadRuntime()
	start := time.Now()
	results := eng.Run(context.Background(), jobs)
	elapsed := time.Since(start)
	after := telemetry.ReadRuntime()

	sk := telemetry.NewDurationSketch()
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("workers=%d: job %s failed: %w", workers, r.ID, r.Err)
		}
		sk.Observe(r.Elapsed)
	}
	if ps == nil {
		return nil, fmt.Errorf("workers=%d: engine delivered no PoolStats", workers)
	}

	st := &step{
		Workers:       workers,
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		Efficiency:    round3(ps.Efficiency()),
		ReorderPeak:   ps.ReorderPeak,
		ReorderStalls: ps.ReorderStalls,
		Runtime: runtimeDelta{
			GCCycles:    after.GCCycles - before.GCCycles,
			GCPauseMS:   round3((after.GCPauseTotalSec - before.GCPauseTotalSec) * 1e3),
			GCCPUMS:     round3((after.GCCPUSec - before.GCCPUSec) * 1e3),
			MutexWaitMS: round3((after.MutexWaitSec - before.MutexWaitSec) * 1e3),
		},
	}
	if elapsed > 0 {
		st.JobsPerSec = round3(float64(len(jobs)) / elapsed.Seconds())
	}
	const ms = float64(time.Millisecond)
	st.Latency = latencyQuantiles{
		P50: round3(float64(sk.Quantile(0.50)) / ms),
		P95: round3(float64(sk.Quantile(0.95)) / ms),
		P99: round3(float64(sk.Quantile(0.99)) / ms),
		Max: round3(float64(sk.Max()) / ms),
	}
	var busy, idle, stall, lock, wall int64
	for _, ws := range ps.Worker {
		busy += ws.BusyNS
		idle += ws.IdleNS
		stall += ws.StallNS
		lock += ws.LockWaitNS
		wall += ws.WallNS
		st.WorkerTable = append(st.WorkerTable, workerRow{
			Worker:     ws.Worker,
			Jobs:       ws.Jobs,
			BusyMS:     round3(float64(ws.BusyNS) / ms),
			IdleMS:     round3(float64(ws.IdleNS) / ms),
			StallMS:    round3(float64(ws.StallNS) / ms),
			LockWaitMS: round3(float64(ws.LockWaitNS) / ms),
			CacheHits:  ws.CacheHits,
			Accounted:  round3(ws.Accounted()),
		})
	}
	if wall > 0 {
		fw := float64(wall)
		st.Attribution = attribution{
			Busy:      round3(float64(busy-lock) / fw),
			LockWait:  round3(float64(lock) / fw),
			Idle:      round3(float64(idle) / fw),
			Stall:     round3(float64(stall) / fw),
			Accounted: round3(float64(busy+idle+stall) / fw),
		}
	}
	return st, nil
}

// parseWorkers turns the -workers list into a sweep; empty means
// 1, 2, 4, ... doubling up to GOMAXPROCS (always including it).
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		max := runtime.GOMAXPROCS(0)
		var sweep []int
		for w := 1; w < max; w *= 2 {
			sweep = append(sweep, w)
		}
		return append(sweep, max), nil
	}
	var sweep []int
	for _, part := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-workers: bad count %q", part)
		}
		sweep = append(sweep, w)
	}
	return sweep, nil
}

// benchMetrics / benchEntry / benchLedger mirror cmd/benchjson's ledger
// schema so a scalestat artifact diffs and merges like any BENCH file.
type benchMetrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

type benchEntry struct {
	Before  *benchMetrics `json:"before,omitempty"`
	After   *benchMetrics `json:"after,omitempty"`
	Speedup float64       `json:"speedup,omitempty"`
}

type benchLedger struct {
	CPU        string                 `json:"cpu,omitempty"`
	Benchmarks map[string]*benchEntry `json:"benchmarks"`
}

// writeBenchLedger records each step as Scalestat/workers=N with
// ns_op = wall time per job, so the follow-up optimization PR has a
// before side to merge its after numbers into.
func writeBenchLedger(path string, rep *report) error {
	doc := benchLedger{Benchmarks: map[string]*benchEntry{}}
	for _, st := range rep.Steps {
		nsOp := st.ElapsedMS * float64(time.Millisecond) / float64(rep.Nets)
		doc.Benchmarks[fmt.Sprintf("Scalestat/workers=%d", st.Workers)] = &benchEntry{
			After: &benchMetrics{NsOp: math.Round(nsOp)},
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// validate is the -check mode: every efficiency/attribution figure must
// be finite, the attribution must explain at least AccountedMin of the
// worker wall time, and — when the scaling floors are armed — each
// step must hit the parallel-efficiency and per-worker-speedup floors
// and stay under the lock-wait ceiling.
func validate(rep *report, floors checkFloors) error {
	if len(rep.Steps) == 0 {
		return fmt.Errorf("check: report has no steps")
	}
	for _, st := range rep.Steps {
		for name, v := range map[string]float64{
			"efficiency": st.Efficiency,
			"speedup":    st.Speedup,
			"busy":       st.Attribution.Busy,
			"lock_wait":  st.Attribution.LockWait,
			"idle":       st.Attribution.Idle,
			"stall":      st.Attribution.Stall,
			"accounted":  st.Attribution.Accounted,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("check: workers=%d: %s is %v", st.Workers, name, v)
			}
		}
		if l := st.Latency; !(0 <= l.P50 && l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
			return fmt.Errorf("check: workers=%d: latency quantiles unordered: %+v", st.Workers, l)
		}
		if st.Efficiency <= 0 || st.Efficiency > 1.01 {
			return fmt.Errorf("check: workers=%d: efficiency %v outside (0, 1]", st.Workers, st.Efficiency)
		}
		if st.Attribution.Accounted < floors.AccountedMin {
			return fmt.Errorf("check: workers=%d: accounted fraction %.3f < %.3f",
				st.Workers, st.Attribution.Accounted, floors.AccountedMin)
		}
		if floors.EfficiencyMin > 0 && st.Efficiency < floors.EfficiencyMin {
			return fmt.Errorf("check: workers=%d: parallel efficiency %.3f < floor %.3f",
				st.Workers, st.Efficiency, floors.EfficiencyMin)
		}
		if floors.SpeedupMin > 0 && st.Speedup < floors.SpeedupMin*float64(st.Workers) {
			return fmt.Errorf("check: workers=%d: speedup %.3f < %.2f x workers = %.3f",
				st.Workers, st.Speedup, floors.SpeedupMin, floors.SpeedupMin*float64(st.Workers))
		}
		if floors.LockWaitMax < 1 && st.Attribution.Accounted > 0 {
			share := st.Attribution.LockWait / st.Attribution.Accounted
			if share > floors.LockWaitMax {
				return fmt.Errorf("check: workers=%d: lock-wait share %.3f of attributed time > ceiling %.3f",
					st.Workers, share, floors.LockWaitMax)
			}
		}
	}
	return nil
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
