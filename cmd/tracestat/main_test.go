package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"elmore/internal/telemetry"
)

// synthetic trace: one root (100us) with two children (60us + 30us),
// so root self = 10us, wall = 100us, and self time accounts for 100%.
const sampleTrace = `{"span":1,"parent":0,"name":"batch.run","start_ns":0,"dur_ns":100000}
{"span":2,"parent":1,"name":"batch.job","start_ns":1000,"dur_ns":60000}
{"span":3,"parent":1,"name":"batch.job","start_ns":62000,"dur_ns":30000}

not json
`

func runCLI(t *testing.T, args []string, stdin string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, strings.NewReader(stdin), &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestTableFromStdin(t *testing.T) {
	out, errOut := runCLI(t, []string{"-"}, sampleTrace)
	if !strings.Contains(errOut, "skipped 1 malformed line") {
		t.Errorf("stderr = %q", errOut)
	}
	if !strings.Contains(out, "batch.job") || !strings.Contains(out, "batch.run") {
		t.Errorf("missing phases:\n%s", out)
	}
	// batch.job: 2 spans, total 90us, all self. batch.run self = 10us.
	if !strings.Contains(out, "90ms") && !strings.Contains(out, "90µs") {
		t.Errorf("missing batch.job total:\n%s", out)
	}
	if !strings.Contains(out, "wall 100µs") {
		t.Errorf("missing wall line:\n%s", out)
	}
	if !strings.Contains(out, "accounts for 100.0%") {
		t.Errorf("self-time accounting wrong:\n%s", out)
	}
	// Sorted by self time: batch.job (90us) before batch.run (10us).
	if strings.Index(out, "batch.job") > strings.Index(out, "batch.run") {
		t.Errorf("phases not sorted by self time:\n%s", out)
	}
}

func TestTopLimitsRows(t *testing.T) {
	out, _ := runCLI(t, []string{"-top", "1", "-"}, sampleTrace)
	if strings.Contains(out, "batch.run\t") || strings.Count(out, "batch.") != 1 {
		t.Errorf("-top 1 left extra rows:\n%s", out)
	}
}

func TestRollupTree(t *testing.T) {
	out, _ := runCLI(t, []string{"-rollup", "-"}, sampleTrace)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + batch.run + nested batch.job
		t.Fatalf("rollup rows = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "batch.run") {
		t.Errorf("root row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  batch.job") {
		t.Errorf("child row not indented: %q", lines[2])
	}
	if !strings.Contains(lines[2], "2") {
		t.Errorf("child rollup should fold 2 spans: %q", lines[2])
	}
}

func TestOrphanParentBecomesRoot(t *testing.T) {
	trace := `{"span":7,"parent":99,"name":"lonely","start_ns":0,"dur_ns":5000}`
	out, _ := runCLI(t, []string{"-rollup", "-"}, trace)
	if !strings.Contains(out, "lonely") {
		t.Errorf("orphan span lost:\n%s", out)
	}
}

func TestEmptyTraceFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-"}, strings.NewReader(""), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no spans") {
		t.Fatalf("err = %v", err)
	}
}

// End-to-end: a real tracer's output must parse and account for ~all
// of the wall time (the root span covers the whole run by construction).
func TestRealTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.NewTracer(telemetry.WriterSink{W: &buf})
	ctx := telemetry.WithTracer(context.Background(), tr)
	ctx, root := telemetry.Start(ctx, "root")
	for i := 0; i < 5; i++ {
		_, sp := telemetry.Start(ctx, fmt.Sprintf("phase%d", i%2))
		sp.End()
	}
	root.End()
	out, _ := runCLI(t, []string{"-"}, buf.String())
	for _, want := range []string{"root", "phase0", "phase1", "wall "} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
