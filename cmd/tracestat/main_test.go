package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elmore/internal/telemetry"
)

// synthetic trace: one root (100us) with two children (60us + 30us),
// so root self = 10us, wall = 100us, and self time accounts for 100%.
const sampleTrace = `{"span":1,"parent":0,"name":"batch.run","start_ns":0,"dur_ns":100000}
{"span":2,"parent":1,"name":"batch.job","start_ns":1000,"dur_ns":60000}
{"span":3,"parent":1,"name":"batch.job","start_ns":62000,"dur_ns":30000}

not json
`

func runCLI(t *testing.T, args []string, stdin string) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, strings.NewReader(stdin), &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

func TestTableFromStdin(t *testing.T) {
	out, errOut := runCLI(t, []string{"-"}, sampleTrace)
	if !strings.Contains(errOut, "skipped 1 malformed line") {
		t.Errorf("stderr = %q", errOut)
	}
	if !strings.Contains(out, "batch.job") || !strings.Contains(out, "batch.run") {
		t.Errorf("missing phases:\n%s", out)
	}
	// batch.job: 2 spans, total 90us, all self. batch.run self = 10us.
	if !strings.Contains(out, "90ms") && !strings.Contains(out, "90µs") {
		t.Errorf("missing batch.job total:\n%s", out)
	}
	if !strings.Contains(out, "wall 100µs") {
		t.Errorf("missing wall line:\n%s", out)
	}
	if !strings.Contains(out, "accounts for 100.0%") {
		t.Errorf("self-time accounting wrong:\n%s", out)
	}
	// Sorted by self time: batch.job (90us) before batch.run (10us).
	if strings.Index(out, "batch.job") > strings.Index(out, "batch.run") {
		t.Errorf("phases not sorted by self time:\n%s", out)
	}
}

func TestTopLimitsRows(t *testing.T) {
	out, _ := runCLI(t, []string{"-top", "1", "-"}, sampleTrace)
	if strings.Contains(out, "batch.run\t") || strings.Count(out, "batch.") != 1 {
		t.Errorf("-top 1 left extra rows:\n%s", out)
	}
}

func TestRollupTree(t *testing.T) {
	out, _ := runCLI(t, []string{"-rollup", "-"}, sampleTrace)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + batch.run + nested batch.job
		t.Fatalf("rollup rows = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "batch.run") {
		t.Errorf("root row = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  batch.job") {
		t.Errorf("child row not indented: %q", lines[2])
	}
	if !strings.Contains(lines[2], "2") {
		t.Errorf("child rollup should fold 2 spans: %q", lines[2])
	}
}

func TestOrphanParentBecomesRoot(t *testing.T) {
	trace := `{"span":7,"parent":99,"name":"lonely","start_ns":0,"dur_ns":5000}`
	out, _ := runCLI(t, []string{"-rollup", "-"}, trace)
	if !strings.Contains(out, "lonely") {
		t.Errorf("orphan span lost:\n%s", out)
	}
}

func TestEmptyTraceFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-"}, strings.NewReader(""), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no spans") {
		t.Fatalf("err = %v", err)
	}
}

// End-to-end: a real tracer's output must parse and account for ~all
// of the wall time (the root span covers the whole run by construction).
func TestRealTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := telemetry.NewTracer(telemetry.WriterSink{W: &buf})
	ctx := telemetry.WithTracer(context.Background(), tr)
	ctx, root := telemetry.Start(ctx, "root")
	for i := 0; i < 5; i++ {
		_, sp := telemetry.Start(ctx, fmt.Sprintf("phase%d", i%2))
		sp.End()
	}
	root.End()
	out, _ := runCLI(t, []string{"-"}, buf.String())
	for _, want := range []string{"root", "phase0", "phase1", "wall "} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// concurrentTrace models a parent with two children that overlap in
// time on different goroutines (workers): child intervals [0,80]us and
// [40,90]us under a 100us parent. Summing would give 130us > 100us and
// clamp parent self to 0; the union is 90us, so parent self = 10us.
const concurrentTrace = `{"span":2,"parent":1,"name":"batch.job","start_ns":0,"dur_ns":80000,"g":7}
{"span":3,"parent":1,"name":"batch.job","start_ns":40000,"dur_ns":50000,"g":8}
{"span":1,"parent":0,"name":"batch.run","start_ns":0,"dur_ns":100000,"g":1}
`

func TestConcurrentChildrenUseIntervalUnion(t *testing.T) {
	spans, skipped, err := readSpans(strings.NewReader(concurrentTrace))
	if err != nil || skipped != 0 {
		t.Fatalf("readSpans: skipped=%d err=%v", skipped, err)
	}
	tr := analyze(spans)
	if got := tr.self[1]; got != 10000 {
		t.Fatalf("parent self = %dns, want 10000 (100us - union 90us)", got)
	}
	// Self time must never exceed wall: 10+80+50 = 140us > 100us wall
	// would be the old double-counting bug for sibling overlap — the
	// children themselves keep their full self time (they ran on
	// different goroutines), so accounted self CAN exceed wall here;
	// what must hold is per-span self >= 0 and parent self exact.
	for id, s := range tr.self {
		if s < 0 {
			t.Errorf("span %d: negative self %d", id, s)
		}
	}
}

func TestUnionLen(t *testing.T) {
	cases := []struct {
		ivs    []interval
		lo, hi int64
		want   int64
	}{
		{nil, 0, 100, 0},
		{[]interval{{0, 50}}, 0, 100, 50},
		{[]interval{{0, 50}, {40, 90}}, 0, 100, 90},            // overlap merges
		{[]interval{{0, 50}, {60, 90}}, 0, 100, 80},            // disjoint adds
		{[]interval{{-20, 30}, {80, 200}}, 0, 100, 50},         // clamped both ends
		{[]interval{{10, 20}, {10, 20}, {10, 20}}, 0, 100, 10}, // duplicates
		{[]interval{{30, 10}}, 0, 100, 0},                      // inverted ignored
	}
	for i, c := range cases {
		if got := unionLen(c.ivs, c.lo, c.hi); got != c.want {
			t.Errorf("case %d: unionLen = %d, want %d", i, got, c.want)
		}
	}
}

func TestRuntimeSampleRecordsSkippedSilently(t *testing.T) {
	trace := `{"record":"runtime_sample","ms":1,"goroutines":9}
{"span":1,"parent":0,"name":"run","start_ns":0,"dur_ns":1000,"g":1}
{"record":"runtime_sample","ms":2,"goroutines":9}
`
	out, errOut := runCLI(t, []string{"-"}, trace)
	if strings.Contains(errOut, "skipped") {
		t.Errorf("runtime_sample records counted as malformed: %q", errOut)
	}
	if !strings.Contains(out, "run") {
		t.Errorf("span lost:\n%s", out)
	}
}

func TestByGoroutineRollup(t *testing.T) {
	out, _ := runCLI(t, []string{"-by-goroutine", "-"}, concurrentTrace)
	for _, want := range []string{"GOROUTINE", "g7", "g8", "g1", "3 goroutines"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

// lineageTrace is a hand-built lineage stream: one span and two
// identical flight retry lines (a ring dumped twice) for one trace,
// plus one flight line with no trace id (pre-lineage or process-scope
// event) that must not produce a row.
const lineageTrace = `{"span":1,"parent":0,"name":"batch.job","start_ns":0,"dur_ns":4000,"trace_id":"00000000000000000000000000000abc","attempt":2}
{"record":"flight","kind":"retry","t_ns":5,"trace_id":"00000000000000000000000000000abc","attempt":2,"index":0,"code":2,"label":"j1"}
{"record":"flight","kind":"retry","t_ns":5,"trace_id":"00000000000000000000000000000abc","attempt":2,"index":0,"code":2,"label":"j1"}
{"record":"flight","kind":"fault","t_ns":9,"index":-1,"label":"sim.step"}
{"record":"flight_dump","reason":"fault","t_ns":9,"events":3,"torn":0}
`

func TestByTraceRollup(t *testing.T) {
	out, _ := runCLI(t, []string{"-by-trace", "-"}, lineageTrace)
	if !strings.Contains(out, "00000000000000000000000000000abc") {
		t.Fatalf("trace row missing:\n%s", out)
	}
	if !strings.Contains(out, "1 traces, 1 spans, 2 flight events (1 duplicate dump lines folded)") {
		t.Errorf("footer wrong:\n%s", out)
	}
	row := ""
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "00000000") {
			row = ln
		}
	}
	fields := strings.Fields(row)
	// TRACE JOB SPANS ATTEMPTS RETRIES TOTAL EVENTS
	if len(fields) != 7 || fields[1] != "j1" || fields[2] != "1" || fields[3] != "2" || fields[4] != "1" {
		t.Errorf("row = %q, want job j1, 1 span, attempt 2, 1 retry (dup folded)", row)
	}
}

func TestByTracePreLineageGraceful(t *testing.T) {
	// A pre-PR-9 trace has no trace_id fields: -by-trace reports that
	// instead of failing, and plain mode still works on the same input.
	out, _ := runCLI(t, []string{"-by-trace", "-"}, sampleTrace)
	if !strings.Contains(out, "no trace ids found") {
		t.Errorf("want graceful no-lineage message, got:\n%s", out)
	}
}

func TestByTraceMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	spanFile := filepath.Join(dir, "trace.ndjson")
	flightFile := filepath.Join(dir, "flight.ndjson")
	lines := strings.SplitAfterN(lineageTrace, "\n", 2)
	if err := os.WriteFile(spanFile, []byte(lines[0]), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(flightFile, []byte(lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := runCLI(t, []string{"-by-trace", spanFile, flightFile}, "")
	if !strings.Contains(out, "1 traces, 1 spans, 2 flight events") {
		t.Errorf("multi-file merge wrong:\n%s", out)
	}
}

// TestLineageFixture is the committed-fixture regression: a real
// 30-job chaos run (seeded sim.step faults, 2 retries, 2 workers) with
// its -trace stream and -flight-dump blocks concatenated. Every job
// minted a trace; retried jobs show their attempt count; the repeated
// dump blocks fold.
func TestLineageFixture(t *testing.T) {
	out, _ := runCLI(t, []string{"-by-trace", filepath.Join("testdata", "trace_lineage.ndjson")}, "")
	if !strings.Contains(out, "30 traces, 151 spans") {
		t.Fatalf("fixture rollup header wrong:\n%s", out)
	}
	if !strings.Contains(out, "duplicate dump lines folded") {
		t.Errorf("dump de-duplication not reported:\n%s", out)
	}
	if !strings.Contains(out, "degraded×") {
		t.Errorf("degraded events missing from rollup:\n%s", out)
	}
	rows := 0
	for _, ln := range strings.Split(out, "\n") {
		f := strings.Fields(ln)
		if len(f) == 0 || len(f[0]) != 32 {
			continue
		}
		if strings.IndexFunc(f[0], func(r rune) bool {
			return !strings.ContainsRune("0123456789abcdef", r)
		}) < 0 {
			rows++
		}
	}
	if rows != 30 {
		t.Errorf("fixture rollup has %d trace rows, want 30:\n%s", rows, out)
	}
	// The plain phase table still works on the mixed stream — flight
	// lines are not "malformed".
	plain, errOut := runCLI(t, []string{filepath.Join("testdata", "trace_lineage.ndjson")}, "")
	if strings.Contains(errOut, "skipped") {
		t.Errorf("flight lines counted as malformed: %q", errOut)
	}
	if !strings.Contains(plain, "batch.attempt") {
		t.Errorf("per-attempt spans missing from phase table:\n%s", plain)
	}
}

// TestRecorded8WorkerTrace is the regression fixture: a real trace of a
// 96-job batch on 8 workers (internal spans emitted by the engine,
// goroutine-tagged). Before interval-union self time, batch.run's self
// went to zero (children summed past it) and per-worker attribution
// was impossible.
func TestRecorded8WorkerTrace(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "trace_8workers.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	spans, skipped, err := readSpans(bytes.NewReader(raw))
	if err != nil || skipped != 0 {
		t.Fatalf("fixture: skipped=%d err=%v", skipped, err)
	}
	if len(spans) != 193 {
		t.Fatalf("fixture has %d spans, want 193 (96 jobs + 96 analyses + 1 run)", len(spans))
	}
	tr := analyze(spans)
	for id, s := range tr.self {
		if s < 0 {
			t.Errorf("span %d: negative self time %d", id, s)
		}
	}
	// The run span's children overlap on 8 workers; their raw sum is
	// several times the run duration. With interval union, the run's
	// self time stays within its own duration.
	var runSpan *span
	for i := range spans {
		if spans[i].Name == "batch.run" {
			runSpan = &spans[i]
		}
	}
	if runSpan == nil {
		t.Fatal("fixture has no batch.run span")
	}
	var childSum int64
	for i := range spans {
		if spans[i].Parent == runSpan.Span {
			childSum += spans[i].DurNS
		}
	}
	if childSum <= runSpan.DurNS {
		t.Skipf("fixture not concurrent enough (childSum %d <= run %d): regenerate with more load", childSum, runSpan.DurNS)
	}
	if self := tr.self[runSpan.Span]; self <= 0 || self > runSpan.DurNS {
		t.Errorf("batch.run self = %d, want in (0, %d] under interval union", self, runSpan.DurNS)
	}

	// The by-goroutine rollup must show one row per worker goroutine.
	var out bytes.Buffer
	tr.writeByGoroutine(&out)
	if !strings.Contains(out.String(), "9 goroutines") {
		t.Errorf("expected 9 goroutines (8 workers + main):\n%s", out.String())
	}
}
