// Command tracestat analyzes a JSON-lines span trace produced by the
// -trace flag of the elmore CLIs (see internal/telemetry). It answers
// "where did the time go": a per-phase aggregate table with counts,
// total and self time (duration minus time attributed to child spans)
// and latency percentiles, plus an optional parent/child rollup tree.
//
// Usage:
//
//	tracestat trace.ndjson
//	tracestat -top 10 trace.ndjson
//	tracestat -rollup trace.ndjson
//	tracestat -by-trace trace.ndjson flight.ndjson
//	boundstat -trace /dev/stdout ... | tracestat -
//
// The final line reports the trace wall time (last span end minus
// first span start) and the fraction of it accounted for by self time
// — a sanity check that the instrumentation covers the run.
//
// -by-trace switches to the lineage view: spans and flight-recorder
// events (the {"record":"flight"} lines a -flight-dump file holds) are
// grouped by the trace id minted per batch job, one row per trace,
// with attempt counts, retries, and anomaly kinds (panic, degraded,
// breaker_open, fault, slow_job). Several input files may be given —
// typically the -trace file plus the -flight-dump file of one run —
// and repeated dump blocks of the same ring are de-duplicated.
// Pre-lineage traces (no trace_id fields) report "no trace ids found"
// instead of failing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

// span mirrors the telemetry spanRecord schema; attrs are ignored.
// Record is set on non-span NDJSON lines (runtime_sample and friends)
// that share the trace stream and are skipped without complaint.
type span struct {
	Span    uint64 `json:"span"`
	Parent  uint64 `json:"parent"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	G       uint64 `json:"g"`
	Record  string `json:"record"`
	TraceID string `json:"trace_id"`
	Attempt int32  `json:"attempt"`
}

// flightEvent mirrors the flight-recorder dump schema (one
// {"record":"flight"} line). The same ring may be dumped several times
// into one -flight-dump file; identical lines are de-duplicated before
// the lineage rollup.
type flightEvent struct {
	Kind    string `json:"kind"`
	TimeNS  int64  `json:"t_ns"`
	TraceID string `json:"trace_id"`
	Attempt int32  `json:"attempt"`
	Index   int64  `json:"index"`
	DurNS   int64  `json:"dur_ns"`
	Code    int64  `json:"code"`
	Label   string `json:"label"`
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 0, "show only the N phases with the most self time (0 = all)")
	rollup := fs.Bool("rollup", false, "print the parent/child rollup tree instead of the flat table")
	byG := fs.Bool("by-goroutine", false, "print the per-goroutine rollup (one row per worker goroutine)")
	byTrace := fs.Bool("by-trace", false, "group spans and flight events by job trace id (lineage view)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: tracestat [-top N] [-rollup] [-by-trace] <trace.ndjson | -> [more files...]")
	}
	var (
		spans   []span
		flights []flightEvent
		skipped int
	)
	for _, name := range fs.Args() {
		in := stdin
		if name != "-" {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			sp, fl, sk, err := readStream(f)
			f.Close()
			if err != nil {
				return err
			}
			spans, flights, skipped = append(spans, sp...), append(flights, fl...), skipped+sk
			continue
		}
		sp, fl, sk, err := readStream(in)
		if err != nil {
			return err
		}
		spans, flights, skipped = append(spans, sp...), append(flights, fl...), skipped+sk
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "tracestat: skipped %d malformed line(s)\n", skipped)
	}
	if *byTrace {
		return writeByTrace(stdout, spans, flights)
	}
	if len(spans) == 0 {
		return fmt.Errorf("no spans in trace")
	}
	t := analyze(spans)
	switch {
	case *rollup:
		t.writeRollup(stdout)
	case *byG:
		t.writeByGoroutine(stdout)
	default:
		t.writeTable(stdout, *top)
	}
	return nil
}

// readSpans keeps the original span-only view of a stream; tests and
// the phase table use it.
func readSpans(in io.Reader) ([]span, int, error) {
	spans, _, skipped, err := readStream(in)
	return spans, skipped, err
}

// readStream splits one NDJSON stream into spans and flight-recorder
// events. Other record kinds (runtime_sample, flight_dump headers,
// health events) sharing the stream are skipped without complaint.
func readStream(in io.Reader) ([]span, []flightEvent, int, error) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		spans   []span
		flights []flightEvent
	)
	skipped := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var s span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			skipped++
			continue
		}
		if s.Record == "flight" {
			var fl flightEvent
			if err := json.Unmarshal([]byte(line), &fl); err != nil || fl.Kind == "" {
				skipped++
				continue
			}
			flights = append(flights, fl)
			continue
		}
		if s.Record != "" {
			// A non-span record (runtime_sample, flight_dump header etc.)
			// sharing the trace stream — expected, not malformed.
			continue
		}
		if s.Span == 0 || s.Name == "" {
			skipped++
			continue
		}
		spans = append(spans, s)
	}
	return spans, flights, skipped, sc.Err()
}

// trace is the analyzed form: per-span self times plus the wall span.
type trace struct {
	spans   []span
	self    map[uint64]int64 // span id -> self ns (dur minus child durs, clamped >= 0)
	byName  map[string]*phase
	wallNS  int64
	roots   []uint64
	childOf map[uint64][]uint64
}

type phase struct {
	name    string
	count   int
	totalNS int64
	selfNS  int64
	durs    []int64
}

func analyze(spans []span) *trace {
	t := &trace{
		spans:   spans,
		self:    make(map[uint64]int64, len(spans)),
		byName:  make(map[string]*phase),
		childOf: make(map[uint64][]uint64),
	}
	ids := make(map[uint64]*span, len(spans))
	for i := range spans {
		ids[spans[i].Span] = &spans[i]
	}
	minStart, maxEnd := spans[0].StartNS, spans[0].StartNS+spans[0].DurNS
	childIvs := make(map[uint64][]interval, len(spans))
	for i := range spans {
		s := &spans[i]
		if s.StartNS < minStart {
			minStart = s.StartNS
		}
		if end := s.StartNS + s.DurNS; end > maxEnd {
			maxEnd = end
		}
		// An orphan parent id (span not present in the file — e.g. a
		// truncated trace) makes the span a root rather than losing it.
		if _, ok := ids[s.Parent]; s.Parent != 0 && ok {
			childIvs[s.Parent] = append(childIvs[s.Parent], interval{s.StartNS, s.StartNS + s.DurNS})
			t.childOf[s.Parent] = append(t.childOf[s.Parent], s.Span)
		} else {
			t.roots = append(t.roots, s.Span)
		}
	}
	t.wallNS = maxEnd - minStart
	for i := range spans {
		s := &spans[i]
		// Self time is the parent's duration minus the UNION of its
		// children's intervals, not their sum: a batch.run span whose
		// children execute concurrently on eight workers would otherwise
		// see Σchild ≈ 8×dur and clamp to zero — or worse, go negative.
		// Intervals are clamped to the parent, so a child that outlives
		// its parent (emit races) cannot push self below zero either.
		self := s.DurNS - unionLen(childIvs[s.Span], s.StartNS, s.StartNS+s.DurNS)
		if self < 0 {
			self = 0
		}
		t.self[s.Span] = self
		p := t.byName[s.Name]
		if p == nil {
			p = &phase{name: s.Name}
			t.byName[s.Name] = p
		}
		p.count++
		p.totalNS += s.DurNS
		p.selfNS += self
		p.durs = append(p.durs, s.DurNS)
	}
	return t
}

// interval is one child occupancy window [start, end).
type interval struct {
	start, end int64
}

// unionLen returns the total length of the union of ivs clamped to
// [lo, hi]. It mutates ivs (sorts in place).
func unionLen(ivs []interval, lo, hi int64) int64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total int64
	curLo, curHi := int64(0), int64(0)
	started := false
	for _, iv := range ivs {
		s, e := iv.start, iv.end
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e <= s {
			continue
		}
		if !started {
			curLo, curHi, started = s, e, true
			continue
		}
		if s <= curHi {
			if e > curHi {
				curHi = e
			}
			continue
		}
		total += curHi - curLo
		curLo, curHi = s, e
	}
	if started {
		total += curHi - curLo
	}
	return total
}

func (t *trace) selfAccountedNS() int64 {
	var sum int64
	for _, s := range t.self {
		sum += s
	}
	return sum
}

// pct returns the nearest-rank percentile of sorted ns durations.
func pct(durs []int64, q float64) int64 {
	i := int(math.Ceil(q*float64(len(durs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(durs) {
		i = len(durs) - 1
	}
	return durs[i]
}

func dur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func (t *trace) writeTable(w io.Writer, top int) {
	phases := make([]*phase, 0, len(t.byName))
	for _, p := range t.byName {
		sort.Slice(p.durs, func(i, j int) bool { return p.durs[i] < p.durs[j] })
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].selfNS > phases[j].selfNS })
	if top > 0 && top < len(phases) {
		phases = phases[:top]
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tCOUNT\tTOTAL\tSELF\tP50\tP95")
	for _, p := range phases {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
			p.name, p.count, dur(p.totalNS), dur(p.selfNS),
			dur(pct(p.durs, 0.50)), dur(pct(p.durs, 0.95)))
	}
	tw.Flush()
	acc := 0.0
	if t.wallNS > 0 {
		acc = 100 * float64(t.selfAccountedNS()) / float64(t.wallNS)
	}
	fmt.Fprintf(w, "wall %s, %d spans, self time accounts for %.1f%% of wall\n",
		dur(t.wallNS), len(t.spans), acc)
}

// writeByGoroutine prints one row per goroutine: span count, total and
// self time, the goroutine's active window (first start to last end)
// and the busy fraction of that window. On a worker-pool trace each
// worker goroutine becomes one row, so an idle or starved worker is
// immediately visible. Spans from traces that predate the g field
// (g absent = 0) fold into a single "g 0" row.
func (t *trace) writeByGoroutine(w io.Writer) {
	type gstat struct {
		g        uint64
		count    int
		totalNS  int64
		selfNS   int64
		minStart int64
		maxEnd   int64
	}
	byG := make(map[uint64]*gstat)
	for i := range t.spans {
		s := &t.spans[i]
		gs := byG[s.G]
		if gs == nil {
			gs = &gstat{g: s.G, minStart: s.StartNS, maxEnd: s.StartNS + s.DurNS}
			byG[s.G] = gs
		}
		gs.count++
		gs.totalNS += s.DurNS
		gs.selfNS += t.self[s.Span]
		if s.StartNS < gs.minStart {
			gs.minStart = s.StartNS
		}
		if end := s.StartNS + s.DurNS; end > gs.maxEnd {
			gs.maxEnd = end
		}
	}
	rows := make([]*gstat, 0, len(byG))
	for _, gs := range byG {
		rows = append(rows, gs)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].selfNS > rows[j].selfNS })
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "GOROUTINE\tSPANS\tTOTAL\tSELF\tWINDOW\tBUSY%")
	for _, gs := range rows {
		window := gs.maxEnd - gs.minStart
		busy := 0.0
		if window > 0 {
			busy = 100 * float64(gs.selfNS) / float64(window)
		}
		fmt.Fprintf(tw, "g%d\t%d\t%s\t%s\t%s\t%.1f\n",
			gs.g, gs.count, dur(gs.totalNS), dur(gs.selfNS), dur(window), busy)
	}
	tw.Flush()
	fmt.Fprintf(w, "wall %s, %d goroutines, %d spans\n", dur(t.wallNS), len(rows), len(t.spans))
}

// writeRollup prints the span forest aggregated by name path: all
// spans sharing the same chain of ancestor names fold into one row.
func (t *trace) writeRollup(w io.Writer) {
	type node struct {
		count    int
		totalNS  int64
		children map[string]*node
		order    []string
	}
	root := &node{children: make(map[string]*node)}
	ids := make(map[uint64]*span, len(t.spans))
	for i := range t.spans {
		ids[t.spans[i].Span] = &t.spans[i]
	}
	var add func(n *node, id uint64)
	add = func(n *node, id uint64) {
		s := ids[id]
		c := n.children[s.Name]
		if c == nil {
			c = &node{children: make(map[string]*node)}
			n.children[s.Name] = c
			n.order = append(n.order, s.Name)
		}
		c.count++
		c.totalNS += s.DurNS
		for _, kid := range t.childOf[id] {
			add(c, kid)
		}
	}
	// Roots in start order for a stable, chronological tree.
	sort.Slice(t.roots, func(i, j int) bool {
		return ids[t.roots[i]].StartNS < ids[t.roots[j]].StartNS
	})
	for _, r := range t.roots {
		add(root, r)
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tCOUNT\tTOTAL")
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		for _, name := range n.order {
			c := n.children[name]
			fmt.Fprintf(tw, "%s%s\t%d\t%s\n",
				strings.Repeat("  ", depth), name, c.count, dur(c.totalNS))
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	tw.Flush()
}

// traceStat is the lineage rollup of everything observed for one
// trace id across spans and flight events.
type traceStat struct {
	id       string
	job      string // job id, from job_done/degraded/retry flight labels
	spans    int
	attempts int32 // highest attempt number observed (1 = no retries)
	retries  int
	totalNS  int64 // summed span durations attributed to the trace
	kinds    map[string]int
	firstNS  int64
}

// anomalyKinds are the flight kinds worth surfacing per trace, in
// display order; span/job_done are the normal-path record kinds.
var anomalyKinds = []string{"retry", "panic", "degraded", "breaker_open", "fault", "stuck", "slow_job"}

// writeByTrace prints one row per trace id: the full lineage of a job
// across its attempts, stitched together from span records and
// flight-recorder events. Inputs that predate lineage propagation
// carry no trace ids; that reports gracefully instead of failing.
func writeByTrace(w io.Writer, spans []span, flights []flightEvent) error {
	stats := make(map[string]*traceStat)
	get := func(id string, when int64) *traceStat {
		ts := stats[id]
		if ts == nil {
			ts = &traceStat{id: id, kinds: make(map[string]int), firstNS: when}
			stats[id] = ts
		}
		if when != 0 && (ts.firstNS == 0 || when < ts.firstNS) {
			ts.firstNS = when
		}
		return ts
	}
	for i := range spans {
		s := &spans[i]
		if s.TraceID == "" {
			continue
		}
		ts := get(s.TraceID, s.StartNS)
		ts.spans++
		ts.totalNS += s.DurNS
		if s.Attempt > ts.attempts {
			ts.attempts = s.Attempt
		}
	}
	// Dumps append: the same ring record can appear under several dump
	// headers. De-duplicate by full identity before counting.
	seen := make(map[flightEvent]bool, len(flights))
	dups := 0
	for _, fl := range flights {
		if seen[fl] {
			dups++
			continue
		}
		seen[fl] = true
		if fl.TraceID == "" {
			continue
		}
		ts := get(fl.TraceID, fl.TimeNS)
		ts.kinds[fl.Kind]++
		if fl.Kind == "retry" {
			ts.retries++
		}
		if fl.Attempt > ts.attempts {
			ts.attempts = fl.Attempt
		}
		if ts.job == "" && fl.Label != "" {
			switch fl.Kind {
			case "job_done", "degraded", "retry":
				ts.job = fl.Label
			}
		}
	}
	if len(stats) == 0 {
		fmt.Fprintln(w, "no trace ids found (inputs predate lineage propagation, or no jobs ran)")
		return nil
	}
	rows := make([]*traceStat, 0, len(stats))
	for _, ts := range stats {
		if ts.attempts == 0 {
			ts.attempts = 1
		}
		rows = append(rows, ts)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].firstNS != rows[j].firstNS {
			return rows[i].firstNS < rows[j].firstNS
		}
		return rows[i].id < rows[j].id
	})
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "TRACE\tJOB\tSPANS\tATTEMPTS\tRETRIES\tTOTAL\tEVENTS")
	for _, ts := range rows {
		var evs []string
		for _, k := range anomalyKinds {
			if n := ts.kinds[k]; n > 0 {
				if k == "retry" {
					continue // own column
				}
				evs = append(evs, fmt.Sprintf("%s×%d", k, n))
			}
		}
		events := strings.Join(evs, ",")
		if events == "" {
			events = "-"
		}
		job := ts.job
		if job == "" {
			job = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\t%s\n",
			ts.id, job, ts.spans, ts.attempts, ts.retries, dur(ts.totalNS), events)
	}
	tw.Flush()
	fmt.Fprintf(w, "%d traces, %d spans, %d flight events", len(stats), len(spans), len(seen))
	if dups > 0 {
		fmt.Fprintf(w, " (%d duplicate dump lines folded)", dups)
	}
	fmt.Fprintln(w)
	return nil
}
