// Command loadgen is the sustained-load and chaos harness for elmored.
// It drives /v1/analyze at a configured request rate across simulated
// tenants, scores every admitted request against declared latency
// objectives, and asserts the service's overload contract: shed
// requests carry Retry-After, admitted streams deliver every job
// exactly once, and the -slo objectives hold for what was admitted.
//
// Sustained overload (run at 2x the server's admitted capacity, expect
// clean sheds and intact SLOs):
//
//	loadgen -url http://127.0.0.1:8080 -rate 40 -duration 5s \
//	        -tenants 2 -jobs 5 -slo p99=500ms -expect-shed
//
// Resume verification (after a mid-flight SIGTERM and restart, re-POST
// the same journaled batch until it completes; the union of all
// streams must be exactly-once):
//
//	loadgen -url http://127.0.0.1:8080 -resume mybatch -jobs 200
//
// Chaos comes from the server side: start elmored with ELMORE_FAULTS
// covering serve.accept/serve.decode/serve.admit (and the batch.*
// points) and loadgen's assertions hold the service to its contract
// while the faults fire. A JSON report lands on stdout either way; a
// violated assertion makes the exit status nonzero.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"elmore/internal/cliutil"
	"elmore/internal/netlist"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// specBody renders n inline-netlist job specs drawn from a small pool
// of distinct random decks (so the server's hot-tree LRU sees repeats,
// like a real corner sweep would produce).
func specBody(seed int64, n, nets, maxNodes int) string {
	if nets < 1 {
		nets = 1
	}
	decks := make([]string, nets)
	for i := range decks {
		tree := topo.Random(seed+int64(i), topo.RandomOptions{N: 2 + (i+maxNodes)%maxNodes})
		decks[i] = netlist.Format(tree, fmt.Sprintf("loadgen net %d", i))
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		line, _ := json.Marshal(map[string]any{
			"id":      fmt.Sprintf("j%d", i),
			"netlist": decks[i%nets],
		})
		sb.Write(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// outcome is one request's scoring.
type outcome struct {
	status       int
	latency      time.Duration
	retryAfter   bool // Retry-After header present on a shed
	exactlyOnce  bool // stream delivered each sent job exactly once
	interrupted  bool
	transportErr bool
}

// summaryLine mirrors elmored's trailing serve_summary record.
type summaryLine struct {
	Record      string `json:"record"`
	Total       int    `json:"total"`
	Emitted     int    `json:"emitted"`
	Failed      int    `json:"failed"`
	Skipped     int    `json:"skipped"`
	Requeued    int    `json:"requeued"`
	Interrupted bool   `json:"interrupted"`
}

// drive POSTs one /v1/analyze request and scores the streamed reply.
// ids collects delivered job IDs when non-nil (resume mode).
func drive(client *http.Client, url, tenant, deadline, batchID, body string, sent int, ids map[string]int) outcome {
	req, err := http.NewRequest(http.MethodPost, url+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		return outcome{transportErr: true}
	}
	req.Header.Set("X-API-Key", tenant)
	if deadline != "" {
		req.Header.Set("X-Elmore-Deadline", deadline)
	}
	if batchID != "" {
		req.Header.Set("X-Batch-ID", batchID)
	}
	began := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome{transportErr: true}
	}
	defer resp.Body.Close()
	out := outcome{status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		out.retryAfter = resp.Header.Get("Retry-After") != ""
		io.Copy(io.Discard, resp.Body)
		out.latency = time.Since(began)
		return out
	}
	seen := map[string]int{}
	var sum summaryLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var m struct {
			Record string `json:"record"`
			ID     string `json:"id"`
		}
		if json.Unmarshal(sc.Bytes(), &m) != nil {
			out.transportErr = true
			return out
		}
		if m.Record == "serve_summary" {
			json.Unmarshal(sc.Bytes(), &sum)
			break
		}
		seen[m.ID]++
		if ids != nil {
			ids[m.ID]++
		}
	}
	if sc.Err() != nil {
		out.transportErr = true
		return out
	}
	out.latency = time.Since(began)
	out.interrupted = sum.Interrupted
	// Exactly-once within one completed stream: every sent job appears
	// once. Interrupted streams are scored by the resume loop instead.
	out.exactlyOnce = true
	if !sum.Interrupted {
		if len(seen)+sum.Skipped != sent {
			out.exactlyOnce = false
		}
		for _, n := range seen {
			if n != 1 {
				out.exactlyOnce = false
			}
		}
	}
	return out
}

// report is the JSON verdict loadgen prints.
type report struct {
	Sent         int     `json:"sent"`
	OK           int     `json:"ok"`
	Shed429      int     `json:"shed_429"`
	Shed503      int     `json:"shed_503"`
	OtherErrors  int     `json:"other_errors"`
	Transport    int     `json:"transport_errors"`
	MissingRetry int     `json:"shed_missing_retry_after"`
	NotOnce      int     `json:"exactly_once_violations"`
	Interrupted  int     `json:"interrupted_streams"`
	P50MS        float64 `json:"latency_p50_ms"`
	P99MS        float64 `json:"latency_p99_ms"`
	SLOPass      bool    `json:"slo_pass"`
	SLODetail    string  `json:"slo_detail,omitempty"`
	Resumes      int     `json:"resumes,omitempty"`
	Pass         bool    `json:"pass"`
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url        = fs.String("url", "http://127.0.0.1:8080", "elmored base URL")
		rate       = fs.Float64("rate", 10, "requests per second to offer")
		duration   = fs.Duration("duration", 5*time.Second, "sustained-load run length")
		tenants    = fs.Int("tenants", 1, "simulated tenants (round-robin X-API-Key)")
		jobs       = fs.Int("jobs", 5, "job specs per request")
		nets       = fs.Int("nets", 4, "distinct random decks cycled through the jobs")
		maxNodes   = fs.Int("max-nodes", 12, "max nodes per random deck")
		seed       = fs.Int64("seed", 1, "deck generation seed")
		deadline   = fs.String("deadline", "", "per-request X-Elmore-Deadline (empty = server default)")
		sloSpec    = fs.String("slo", "", "objectives admitted requests must meet, e.g. p99=500ms")
		expectShed = fs.Bool("expect-shed", false, "fail unless at least one request was shed (overload runs)")
		resumeID   = fs.String("resume", "", "resume mode: re-POST batch `id` until complete, assert exactly-once union")
		maxResumes = fs.Int("max-resumes", 20, "resume mode: give up after this many attempts")
	)
	fs.Bool("version", false, "print version information and exit") // parity with the other cmds
	if err := fs.Parse(args); err != nil {
		return err
	}
	if vf := fs.Lookup("version"); vf != nil && vf.Value.String() == "true" {
		fmt.Fprintln(stdout, cliutil.Version("loadgen"))
		return nil
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *rate <= 0 || *duration <= 0 || *tenants < 1 || *jobs < 1 || *maxResumes < 1 {
		return fmt.Errorf("-rate, -duration, -tenants, -jobs and -max-resumes must be positive")
	}
	slos, err := telemetry.ParseSLOs(*sloSpec)
	if err != nil {
		return fmt.Errorf("-slo: %w", err)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	body := specBody(*seed, *jobs, *nets, *maxNodes)

	var rep report
	if *resumeID != "" {
		rep = runResume(client, *url, *deadline, *resumeID, body, *jobs, *maxResumes)
	} else {
		rep = runSustained(client, *url, *deadline, body, *jobs, *rate, *duration, *tenants, slos)
	}
	if *expectShed && rep.Shed429+rep.Shed503 == 0 {
		rep.Pass = false
		fmt.Fprintln(stderr, "loadgen: -expect-shed: no requests were shed")
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Pass {
		return errors.New("assertions failed (see report)")
	}
	return nil
}

// runSustained offers requests at the configured rate and scores them.
func runSustained(client *http.Client, url, deadline, body string, jobs int, rate float64, duration time.Duration, tenants int, slos []telemetry.SLO) report {
	interval := time.Duration(float64(time.Second) / rate)
	stop := time.Now().Add(duration)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		outcomes []outcome
	)
	for i := 0; time.Now().Before(stop); i++ {
		tenant := fmt.Sprintf("tenant-%d", i%tenants)
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := drive(client, url, tenant, deadline, "", body, jobs, nil)
			mu.Lock()
			outcomes = append(outcomes, out)
			mu.Unlock()
		}()
		time.Sleep(interval)
	}
	wg.Wait()

	rep := report{Sent: len(outcomes), Pass: true, SLOPass: true}
	var lat []time.Duration
	for _, o := range outcomes {
		switch {
		case o.transportErr:
			rep.Transport++
			rep.Pass = false
		case o.status == http.StatusOK:
			rep.OK++
			lat = append(lat, o.latency)
			if o.interrupted {
				rep.Interrupted++
			} else if !o.exactlyOnce {
				rep.NotOnce++
				rep.Pass = false
			}
		case o.status == http.StatusTooManyRequests:
			rep.Shed429++
			if !o.retryAfter {
				rep.MissingRetry++
				rep.Pass = false
			}
		case o.status == http.StatusServiceUnavailable:
			rep.Shed503++
			if !o.retryAfter {
				rep.MissingRetry++
				rep.Pass = false
			}
		default:
			rep.OtherErrors++
			rep.Pass = false
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.P50MS = float64(quantile(lat, 0.50)) / float64(time.Millisecond)
	rep.P99MS = float64(quantile(lat, 0.99)) / float64(time.Millisecond)
	var violations []string
	for _, s := range slos {
		got := quantile(lat, s.Quantile)
		if got > s.Target {
			violations = append(violations, fmt.Sprintf("%s=%v > %v", s.Name, got, s.Target))
		}
	}
	if len(violations) > 0 {
		rep.SLOPass, rep.Pass = false, false
		rep.SLODetail = strings.Join(violations, "; ")
	}
	return rep
}

// runResume re-POSTs one journaled batch until the server reports it
// complete, then asserts the union of every stream is exactly-once.
func runResume(client *http.Client, url, deadline, batchID, body string, jobs, maxResumes int) report {
	rep := report{Pass: true, SLOPass: true}
	ids := map[string]int{}
	for attempt := 0; attempt < maxResumes; attempt++ {
		rep.Sent++
		out := drive(client, url, "resume", deadline, batchID, body, jobs, ids)
		switch {
		case out.transportErr:
			rep.Transport++
			time.Sleep(200 * time.Millisecond) // server may be restarting
			continue
		case out.status == http.StatusOK:
			rep.OK++
			rep.Resumes = attempt
			if out.interrupted {
				rep.Interrupted++
				continue
			}
		case out.status == http.StatusTooManyRequests || out.status == http.StatusServiceUnavailable:
			if out.status == http.StatusTooManyRequests {
				rep.Shed429++
			} else {
				rep.Shed503++
			}
			if !out.retryAfter {
				rep.MissingRetry++
				rep.Pass = false
			}
			time.Sleep(300 * time.Millisecond)
			continue
		default:
			rep.OtherErrors++
			rep.Pass = false
			return rep
		}
		// Completed: every job delivered exactly once across all streams.
		for i := 0; i < jobs; i++ {
			if n := ids[fmt.Sprintf("j%d", i)]; n != 1 {
				rep.NotOnce++
				rep.Pass = false
			}
		}
		return rep
	}
	rep.Pass = false
	return rep
}
