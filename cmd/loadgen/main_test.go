package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// stubAnalyze builds a minimal /v1/analyze handler for exercising the
// harness without a real elmored: behave(ids) returns the result IDs
// to stream (possibly with duplicates or omissions), the skipped
// count, and whether the summary reports an interruption.
func stubAnalyze(behave func(call int, ids []string) (emit []string, skipped int, interrupted bool)) http.Handler {
	var mu sync.Mutex
	call := 0
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/analyze" {
			http.NotFound(w, r)
			return
		}
		var ids []string
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			var m struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			ids = append(ids, m.ID)
		}
		mu.Lock()
		call++
		n := call
		mu.Unlock()
		emit, skipped, interrupted := behave(n, ids)
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, id := range emit {
			fmt.Fprintf(w, `{"record":"result","id":%q}`+"\n", id)
		}
		fmt.Fprintf(w, `{"record":"serve_summary","total":%d,"emitted":%d,"skipped":%d,"interrupted":%v}`+"\n",
			len(ids), len(emit), skipped, interrupted)
	})
}

func runLoadgen(t *testing.T, args ...string) (report, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	var rep report
	if out.Len() > 0 {
		if jerr := json.Unmarshal(out.Bytes(), &rep); jerr != nil {
			t.Fatalf("bad report %q: %v", out.String(), jerr)
		}
	}
	return rep, err
}

func TestSustainedHappyPath(t *testing.T) {
	ts := httptest.NewServer(stubAnalyze(func(_ int, ids []string) ([]string, int, bool) {
		return ids, 0, false
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-rate", "50", "-duration", "200ms", "-jobs", "3", "-slo", "p99=10s")
	if err != nil {
		t.Fatalf("run: %v (report %+v)", err, rep)
	}
	if !rep.Pass || !rep.SLOPass || rep.OK == 0 || rep.OK != rep.Sent {
		t.Fatalf("report = %+v, want all-OK pass", rep)
	}
}

func TestSustainedFlagsDuplicateDelivery(t *testing.T) {
	ts := httptest.NewServer(stubAnalyze(func(_ int, ids []string) ([]string, int, bool) {
		return append(ids, ids[0]), 0, false // j0 delivered twice
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-rate", "50", "-duration", "100ms", "-jobs", "3")
	if err == nil {
		t.Fatalf("duplicate delivery not flagged: %+v", rep)
	}
	if rep.NotOnce == 0 {
		t.Fatalf("exactly_once_violations = 0, want > 0: %+v", rep)
	}
}

func TestShedRequiresRetryAfter(t *testing.T) {
	// Sheds WITH Retry-After are tolerated (and satisfy -expect-shed)...
	polite := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"rate"}`, http.StatusTooManyRequests)
	}))
	defer polite.Close()
	rep, err := runLoadgen(t, "-url", polite.URL, "-rate", "50", "-duration", "100ms", "-expect-shed")
	if err != nil {
		t.Fatalf("polite sheds should pass: %v (%+v)", err, rep)
	}
	if rep.Shed429 == 0 {
		t.Fatalf("no 429s recorded: %+v", rep)
	}

	// ...sheds WITHOUT it violate the overload contract.
	rude := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"rate"}`, http.StatusServiceUnavailable)
	}))
	defer rude.Close()
	rep, err = runLoadgen(t, "-url", rude.URL, "-rate", "50", "-duration", "100ms")
	if err == nil {
		t.Fatalf("missing Retry-After not flagged: %+v", rep)
	}
	if rep.MissingRetry == 0 {
		t.Fatalf("shed_missing_retry_after = 0, want > 0: %+v", rep)
	}
}

func TestExpectShedFailsWhenNothingShed(t *testing.T) {
	ts := httptest.NewServer(stubAnalyze(func(_ int, ids []string) ([]string, int, bool) {
		return ids, 0, false
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-rate", "50", "-duration", "100ms", "-expect-shed")
	if err == nil {
		t.Fatalf("-expect-shed with zero sheds should fail: %+v", rep)
	}
}

func TestSustainedSLOViolation(t *testing.T) {
	ts := httptest.NewServer(stubAnalyze(func(_ int, ids []string) ([]string, int, bool) {
		return ids, 0, false
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-rate", "50", "-duration", "100ms", "-slo", "p50=1ns")
	if err == nil {
		t.Fatalf("impossible SLO should fail: %+v", rep)
	}
	if rep.SLOPass || rep.SLODetail == "" {
		t.Fatalf("SLO verdict missing: %+v", rep)
	}
}

func TestResumeExactlyOnceAcrossInterruption(t *testing.T) {
	// Call 1 delivers a prefix and reports interrupted; call 2 delivers
	// the remainder with the prefix skipped — the journaled-resume shape.
	ts := httptest.NewServer(stubAnalyze(func(call int, ids []string) ([]string, int, bool) {
		half := len(ids) / 2
		if call == 1 {
			return ids[:half], 0, true
		}
		return ids[half:], half, false
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-resume", "b1", "-jobs", "8")
	if err != nil {
		t.Fatalf("resume run: %v (%+v)", err, rep)
	}
	if rep.Resumes != 1 || rep.NotOnce != 0 || rep.Interrupted != 1 {
		t.Fatalf("report = %+v, want one resume, zero violations", rep)
	}
}

func TestResumeFlagsDuplicateAcrossStreams(t *testing.T) {
	// The second stream re-delivers a job the first already streamed.
	ts := httptest.NewServer(stubAnalyze(func(call int, ids []string) ([]string, int, bool) {
		half := len(ids) / 2
		if call == 1 {
			return ids[:half], 0, true
		}
		return ids[half-1:], half - 1, false // ids[half-1] delivered twice
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-resume", "b1", "-jobs", "8")
	if err == nil {
		t.Fatalf("cross-stream duplicate not flagged: %+v", rep)
	}
	if rep.NotOnce == 0 {
		t.Fatalf("exactly_once_violations = 0, want > 0: %+v", rep)
	}
}

func TestResumeGivesUpAfterMaxAttempts(t *testing.T) {
	ts := httptest.NewServer(stubAnalyze(func(_ int, ids []string) ([]string, int, bool) {
		return nil, 0, true // never completes
	}))
	defer ts.Close()
	rep, err := runLoadgen(t, "-url", ts.URL, "-resume", "b1", "-jobs", "4", "-max-resumes", "3")
	if err == nil {
		t.Fatalf("never-completing batch should fail: %+v", rep)
	}
	if rep.Sent != 3 {
		t.Fatalf("sent = %d, want 3 attempts: %+v", rep.Sent, rep)
	}
}

func TestSpecBodyShape(t *testing.T) {
	body := specBody(1, 6, 2, 8)
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d spec lines, want 6", len(lines))
	}
	decks := map[string]bool{}
	for i, ln := range lines {
		var m struct {
			ID      string `json:"id"`
			Netlist string `json:"netlist"`
		}
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if m.ID != fmt.Sprintf("j%d", i) {
			t.Errorf("line %d id = %q", i, m.ID)
		}
		if m.Netlist == "" {
			t.Errorf("line %d has empty netlist", i)
		}
		decks[m.Netlist] = true
	}
	if len(decks) != 2 {
		t.Errorf("got %d distinct decks, want 2 (nets=2 cycling)", len(decks))
	}
}

func TestRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-rate", "0"},
		{"-duration", "0s"},
		{"-jobs", "0"},
		{"-slo", "p200=1s"},
		{"positional"},
	} {
		if _, err := runLoadgen(t, args...); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
