package main

import (
	"bytes"
	"strings"
	"testing"

	"elmore/internal/netlist"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestGenerateTopologies(t *testing.T) {
	cases := []struct {
		args  []string
		nodes int
	}{
		{[]string{"-topology", "fig1"}, 7},
		{[]string{"-topology", "line25"}, 25},
		{[]string{"-topology", "chain", "-n", "10"}, 10},
		{[]string{"-topology", "star", "-branches", "3", "-per-branch", "4"}, 13},
		{[]string{"-topology", "balanced", "-depth", "3", "-fanout", "2"}, 7},
		{[]string{"-topology", "random", "-n", "42", "-seed", "7"}, 42},
	}
	for _, tc := range cases {
		out, err := runCLI(t, tc.args...)
		if err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		d, err := netlist.ParseString(out)
		if err != nil {
			t.Errorf("%v: generated deck does not parse: %v", tc.args, err)
			continue
		}
		if d.Tree.N() != tc.nodes {
			t.Errorf("%v: N = %d, want %d", tc.args, d.Tree.N(), tc.nodes)
		}
	}
}

func TestDeterministicSeed(t *testing.T) {
	a, err := runCLI(t, "-topology", "random", "-n", "20", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCLI(t, "-topology", "random", "-n", "20", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed should give identical decks")
	}
	c, err := runCLI(t, "-topology", "random", "-n", "20", "-seed", "4")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Errorf("different seeds should differ")
	}
}

func TestValueFlags(t *testing.T) {
	out, err := runCLI(t, "-topology", "chain", "-n", "2", "-r", "1k", "-c", "2p")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1000") || !strings.Contains(out, "2e-12") {
		t.Errorf("values not honored:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCLI(t, "-topology", "moebius"); err == nil {
		t.Errorf("unknown topology should fail")
	}
	if _, err := runCLI(t, "-r", "zz"); err == nil {
		t.Errorf("bad -r should fail")
	}
	if _, err := runCLI(t, "-c", "zz"); err == nil {
		t.Errorf("bad -c should fail")
	}
	if _, err := runCLI(t, "stray"); err == nil {
		t.Errorf("stray arg should fail")
	}
}

func TestDOTOutput(t *testing.T) {
	out, err := runCLI(t, "-topology", "fig1", "-dot")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "\"C1\" -> \"C2\"") {
		t.Errorf("dot output wrong:\n%s", out)
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runCLI(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "rcgen ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}
