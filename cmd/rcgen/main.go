// Command rcgen generates RC-tree netlists: the paper's calibrated
// circuits or parametric/random families, for feeding the other tools
// and for benchmark workloads.
//
// Usage:
//
//	rcgen -topology fig1|line25|chain|star|balanced|random
//	      [-n 100] [-seed 1] [-r 50] [-c 10f]
//	      [-branches 4] [-per-branch 8] [-depth 4] [-fanout 2]
//	      [-chaininess 0.5] [-o out.sp]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"elmore/internal/cliutil"
	"elmore/internal/netlist"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rcgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("rcgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		topology   = fs.String("topology", "random", "fig1, line25, chain, star, balanced or random")
		n          = fs.Int("n", 100, "node count (chain, random)")
		seed       = fs.Int64("seed", 1, "random seed")
		rStr       = fs.String("r", "50", "per-segment resistance (chain, star, balanced)")
		cStr       = fs.String("c", "10f", "per-node capacitance (chain, star, balanced)")
		branches   = fs.Int("branches", 4, "branch count (star)")
		perBranch  = fs.Int("per-branch", 8, "nodes per branch (star)")
		depth      = fs.Int("depth", 4, "tree depth (balanced)")
		fanout     = fs.Int("fanout", 2, "fanout (balanced)")
		chaininess = fs.Float64("chaininess", 0.5, "chain-extension probability (random)")
		outPath    = fs.String("o", "", "output path (default stdout)")
		asDOT      = fs.Bool("dot", false, "emit Graphviz dot instead of a SPICE deck")
	)
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("rcgen"))
		return nil
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	ctx, root := telemetry.Start(sess.Context(), "rcgen.run")
	root.AttrString("topology", *topology)
	defer root.End()
	r, err := rctree.ParseValue(*rStr)
	if err != nil {
		return fmt.Errorf("-r: %w", err)
	}
	c, err := rctree.ParseValue(*cStr)
	if err != nil {
		return fmt.Errorf("-c: %w", err)
	}

	_, gsp := telemetry.Start(ctx, "generate")
	var tree *rctree.Tree
	title := ""
	switch *topology {
	case "fig1":
		tree = topo.Fig1Tree()
		title = "calibrated Fig. 1 tree (Gupta-Tutuianu-Pileggi)"
	case "line25":
		tree = topo.Line25Tree()
		title = "calibrated 25-node line (Table II / Figs 13-14)"
	case "chain":
		tree = topo.Chain(*n, r, c)
		title = fmt.Sprintf("uniform %d-node RC chain", *n)
	case "star":
		tree = topo.Star(*branches, *perBranch, r, c)
		title = fmt.Sprintf("star: %d branches x %d nodes", *branches, *perBranch)
	case "balanced":
		tree = topo.Balanced(*depth, *fanout, r, c)
		title = fmt.Sprintf("balanced tree: depth %d, fanout %d", *depth, *fanout)
	case "random":
		tree = topo.Random(*seed, topo.RandomOptions{N: *n, Chaininess: *chaininess})
		title = fmt.Sprintf("random %d-node RC tree (seed %d)", *n, *seed)
	default:
		gsp.End()
		return fmt.Errorf("-topology: unknown %q", *topology)
	}
	gsp.AttrInt("nodes", int64(tree.N()))
	gsp.End()

	_, wsp := telemetry.Start(ctx, "write")
	defer wsp.End()
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *asDOT {
		_, err := fmt.Fprint(out, tree.DOT(title))
		return err
	}
	return netlist.Write(out, tree, title)
}
