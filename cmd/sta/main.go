// Command sta times a gate + interconnect path: cells from a
// liberty-lite library, nets from SPICE-style decks, certified net
// delay windows from the Elmore bounds, slew propagation by variance
// addition.
//
// Usage:
//
//	sta -lib cells.lib -slew 30p CELL:NETFILE:SINK [CELL:NETFILE:SINK ...]
//
// Each positional argument is one stage: the driving cell name, the
// netlist file of the driven net, and the net node feeding the next
// stage (or the endpoint).
//
// With -jobs FILE the tool instead evaluates an NDJSON stream of path
// jobs concurrently (see internal/batch for the job schema; -slew is
// the default input slew for specs that omit it) and emits one NDJSON
// result line per job, in job order:
//
//	sta -lib cells.lib -jobs paths.ndjson -workers 8 > results.ndjson
//
// Batch runs share boundstat's observability surface: per-job lineage
// trace_ids on every result line, -flight-dump FILE for the always-on
// flight recorder (dumped on SIGQUIT or anomalies, read back with
// tracestat -by-trace), and -slo objectives in the -summary record.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"elmore/internal/cliutil"
	"elmore/internal/gate"
	"elmore/internal/netlist"
	"elmore/internal/rctree"
	"elmore/internal/sta"
	"elmore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sta:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("sta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		libPath  = fs.String("lib", "", "liberty-lite cell library file (required)")
		slewSpec = fs.String("slew", "30p", "transition time of the edge entering the path")
	)
	cf := cliutil.Add(fs)
	bf := cliutil.AddBatch(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("sta"))
		return nil
	}
	if *libPath == "" {
		return fmt.Errorf("-lib is required")
	}
	if bf.Jobs == "" && fs.NArg() == 0 {
		return fmt.Errorf("at least one CELL:NETFILE:SINK stage is required")
	}
	if bf.Jobs != "" && fs.NArg() != 0 {
		return fmt.Errorf("-jobs and positional stages are mutually exclusive")
	}
	inSlew, err := rctree.ParseValue(*slewSpec)
	if err != nil {
		return fmt.Errorf("-slew: %w", err)
	}

	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	ctx, root := telemetry.Start(sess.Context(), "sta.run")
	defer root.End()

	_, psp := telemetry.Start(ctx, "parse")
	libFile, err := os.Open(*libPath)
	if err != nil {
		psp.End()
		return err
	}
	lib, err := gate.ParseLibrary(libFile)
	libFile.Close()
	if err != nil {
		psp.End()
		return err
	}

	if bf.Jobs != "" {
		psp.End()
		// Batch mode: path (and net/transient) jobs from the NDJSON
		// stream, -slew as the default input slew, results streamed in
		// job order, with retry/degradation and the -resume journal
		// handled by cliutil.
		return bf.RunBatch(ctx, lib, inSlew, stdout, stderr)
	}

	path := sta.Path{InputSlew: inSlew}
	for _, spec := range fs.Args() {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return fmt.Errorf("stage %q: want CELL:NETFILE:SINK", spec)
		}
		cell, err := lib.Get(parts[0])
		if err != nil {
			return err
		}
		netFile, err := os.Open(parts[1])
		if err != nil {
			return err
		}
		deck, err := netlist.Parse(netFile)
		netFile.Close()
		if err != nil {
			return fmt.Errorf("stage %q: %w", spec, err)
		}
		path.Stages = append(path.Stages, sta.Stage{Cell: cell, Net: deck.Tree, Sink: parts[2]})
	}
	psp.End()

	actx, asp := telemetry.Start(ctx, "analyze")
	res, err := sta.AnalyzePathContext(actx, path)
	asp.End()
	if err != nil {
		return err
	}
	_, rsp := telemetry.Start(ctx, "report")
	defer rsp.End()
	fmt.Fprintf(stdout, "%-12s %-8s %10s %10s %10s %10s %12s %12s\n",
		"cell", "sink", "Ceff", "gate", "net UB", "net LB", "arrival UB", "arrival LB")
	for _, st := range res.Stages {
		fmt.Fprintf(stdout, "%-12s %-8s %10s %10s %10s %10s %12s %12s\n",
			st.Cell, st.Sink,
			rctree.FormatFarads(st.Ceff),
			rctree.FormatSeconds(st.GateDelay),
			rctree.FormatSeconds(st.NetElmore),
			rctree.FormatSeconds(st.NetLower),
			rctree.FormatSeconds(st.ArrivalUB),
			rctree.FormatSeconds(st.ArrivalLB))
	}
	fmt.Fprintf(stdout, "\npath arrival window: [%s, %s]; endpoint edge %s\n",
		rctree.FormatSeconds(res.ArrivalLB),
		rctree.FormatSeconds(res.ArrivalUB),
		rctree.FormatSeconds(res.Stages[len(res.Stages)-1].SinkSlew))
	return nil
}
