package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const lib = `cell inv_x1 {
  delay {
    slews: 1p 100p
    loads: 1f 200f
    row: 5p 30p
    row: 8p 34p
  }
  output_slew {
    slews: 1p 100p
    loads: 1f 200f
    row: 6p 40p
    row: 9p 44p
  }
}
`

const net = `Vin in 0 1
R1 in a 100
C1 a 0 20f
R2 a z 150
C2 z 0 30f
`

func writeFiles(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	libPath := filepath.Join(dir, "cells.lib")
	netPath := filepath.Join(dir, "net.sp")
	if err := os.WriteFile(libPath, []byte(lib), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(netPath, []byte(net), 0o644); err != nil {
		t.Fatal(err)
	}
	return libPath, netPath
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestTwoStagePath(t *testing.T) {
	libPath, netPath := writeFiles(t)
	out, err := runCLI(t, "-lib", libPath, "-slew", "20p",
		"inv_x1:"+netPath+":z", "inv_x1:"+netPath+":a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "path arrival window") {
		t.Errorf("missing summary:\n%s", out)
	}
	if strings.Count(out, "inv_x1") != 2 {
		t.Errorf("expected two stage rows:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	libPath, netPath := writeFiles(t)
	if _, err := runCLI(t); err == nil {
		t.Errorf("missing -lib should fail")
	}
	if _, err := runCLI(t, "-lib", libPath); err == nil {
		t.Errorf("no stages should fail")
	}
	if _, err := runCLI(t, "-lib", libPath, "bad-spec"); err == nil {
		t.Errorf("malformed stage should fail")
	}
	if _, err := runCLI(t, "-lib", libPath, "nocell:"+netPath+":z"); err == nil {
		t.Errorf("unknown cell should fail")
	}
	if _, err := runCLI(t, "-lib", libPath, "inv_x1:/nonexistent:z"); err == nil {
		t.Errorf("missing net file should fail")
	}
	if _, err := runCLI(t, "-lib", libPath, "inv_x1:"+netPath+":nope"); err == nil {
		t.Errorf("unknown sink should fail")
	}
	if _, err := runCLI(t, "-lib", "/nonexistent.lib", "inv_x1:"+netPath+":z"); err == nil {
		t.Errorf("missing library should fail")
	}
	if _, err := runCLI(t, "-lib", libPath, "-slew", "zz", "inv_x1:"+netPath+":z"); err == nil {
		t.Errorf("bad slew should fail")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runCLI(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "sta ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}

func TestBatchMode(t *testing.T) {
	libPath, netPath := writeFiles(t)
	dir := t.TempDir()
	jobsPath := filepath.Join(dir, "paths.ndjson")
	jobs := fmt.Sprintf(
		"{\"id\":\"p1\",\"stages\":[{\"cell\":\"inv_x1\",\"net\":%q,\"sink\":\"z\"}]}\n"+
			"{\"id\":\"p2\",\"slew\":\"40p\",\"stages\":[{\"cell\":\"inv_x1\",\"net\":%q,\"sink\":\"z\"},{\"cell\":\"inv_x1\",\"net\":%q,\"sink\":\"a\"}]}\n",
		netPath, netPath, netPath)
	if err := os.WriteFile(jobsPath, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-lib", libPath, "-slew", "20p", "-jobs", jobsPath, "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), out)
	}
	for i, id := range []string{"p1", "p2"} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["id"] != id {
			t.Errorf("line %d id = %v, want %s (job order)", i, rec["id"], id)
		}
		if rec["error"] != nil {
			t.Errorf("job %s failed: %v", id, rec["error"])
		}
		path, _ := rec["path"].(map[string]any)
		if path == nil || path["arrival_ub"] == nil {
			t.Errorf("job %s missing path payload: %v", id, rec)
		}
	}
	// The single-shot table must not appear in batch mode.
	if strings.Contains(out, "path arrival window") {
		t.Errorf("batch mode printed the single-shot report:\n%s", out)
	}
}

func TestBatchModeErrors(t *testing.T) {
	libPath, netPath := writeFiles(t)
	dir := t.TempDir()
	jobsPath := filepath.Join(dir, "paths.ndjson")
	jobs := "{\"id\":\"bad\",\"stages\":[{\"cell\":\"nocell\",\"net\":\"x.sp\",\"sink\":\"z\"}]}\n"
	if err := os.WriteFile(jobsPath, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-lib", libPath, "-jobs", jobsPath)
	if err == nil || !strings.Contains(err.Error(), "1 of 1 jobs failed") {
		t.Errorf("failed jobs must fail the run: %v", err)
	}
	if !strings.Contains(out, `"error"`) {
		t.Errorf("missing error record:\n%s", out)
	}
	if _, err := runCLI(t, "-lib", libPath, "-jobs", jobsPath, "inv_x1:"+netPath+":z"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-jobs plus positional stages must be rejected, got %v", err)
	}
	if _, err := runCLI(t, "-jobs", jobsPath); err == nil {
		t.Errorf("-jobs without -lib should fail")
	}
}
