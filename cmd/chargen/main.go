// Command chargen characterizes a Thevenin-model driver into
// liberty-lite delay / output-slew tables by *measurement*: for every
// (input slew, load) grid point it builds the R-C stage, drives it with
// a saturated ramp through the exact response engine, and records the
// measured 50% delay and 10-90% output transition — the same flow a
// characterization team runs in SPICE, here backed by the
// eigen-decomposition engine.
//
// Usage:
//
//	chargen -name inv_x1 -r 300 -d0 5p
//	        [-slews 1p,20p,80p] [-loads 1f,20f,80f] [-o cells.lib]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"elmore/internal/cliutil"
	"elmore/internal/exact"
	"elmore/internal/gate"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "chargen:", err)
		os.Exit(1)
	}
}

func parseList(spec string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(spec, ",") {
		v, err := rctree.ParseValue(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("values must be positive, got %v", v)
		}
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			return nil, fmt.Errorf("values must be ascending")
		}
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("chargen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("name", "cell_x1", "cell name")
		rStr     = fs.String("r", "300", "driver effective resistance")
		d0Str    = fs.String("d0", "0", "intrinsic (load-independent) delay")
		slewSpec = fs.String("slews", "1p,20p,80p,320p", "comma-separated input transition grid")
		loadSpec = fs.String("loads", "1f,20f,80f,320f", "comma-separated load capacitance grid")
		outPath  = fs.String("o", "", "output path (default stdout)")
	)
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("chargen"))
		return nil
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	rdrv, err := rctree.ParseValue(*rStr)
	if err != nil {
		return fmt.Errorf("-r: %w", err)
	}
	if rdrv <= 0 {
		return fmt.Errorf("-r must be positive")
	}
	d0, err := rctree.ParseValue(*d0Str)
	if err != nil {
		return fmt.Errorf("-d0: %w", err)
	}
	if d0 < 0 {
		return fmt.Errorf("-d0 must be nonnegative")
	}
	slews, err := parseList(*slewSpec)
	if err != nil {
		return fmt.Errorf("-slews: %w", err)
	}
	loads, err := parseList(*loadSpec)
	if err != nil {
		return fmt.Errorf("-loads: %w", err)
	}

	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	ctx, root := telemetry.Start(sess.Context(), "chargen.run")
	root.AttrInt("grid_points", int64(len(slews)*len(loads)))
	defer root.End()

	mctx, msp := telemetry.Start(ctx, "characterize")
	delay := &gate.Table{Slews: slews, Loads: loads}
	oslew := &gate.Table{Slews: slews, Loads: loads}
	for _, sl := range slews {
		var dRow, sRow []float64
		for _, cl := range loads {
			d, tr, err := measure(mctx, rdrv, cl, sl)
			if err != nil {
				msp.End()
				return fmt.Errorf("measure(slew=%g, load=%g): %w", sl, cl, err)
			}
			dRow = append(dRow, d0+d)
			sRow = append(sRow, tr)
		}
		delay.Values = append(delay.Values, dRow)
		oslew.Values = append(oslew.Values, sRow)
	}
	msp.End()
	cell := &gate.Cell{Name: *name, Delay: delay, OutputSlew: oslew}
	if err := cell.Validate(); err != nil {
		return err
	}

	_, wsp := telemetry.Start(ctx, "write")
	defer wsp.End()
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	lib := &gate.Library{Cells: map[string]*gate.Cell{cell.Name: cell}}
	_, err = io.WriteString(out, gate.FormatLibrary(lib))
	return err
}

// measure builds the single-stage R-C circuit, drives it with a
// saturated ramp of the given slew, and returns the measured 50% delay
// and the equivalent 0-100% output ramp duration (10-90% time / 0.8).
func measure(ctx context.Context, rdrv, load, slew float64) (delay, outSlew float64, err error) {
	b := rctree.NewBuilder()
	b.MustRoot("out", rdrv, load)
	tree, err := b.Build()
	if err != nil {
		return 0, 0, err
	}
	sys, err := exact.NewSystemContext(ctx, tree)
	if err != nil {
		return 0, 0, err
	}
	in := signal.SaturatedRamp{Tr: slew}
	d, err := sys.Delay(0, in, 0)
	if err != nil {
		return 0, 0, err
	}
	p, err := signal.ToPWL(in, 2)
	if err != nil {
		return 0, 0, err
	}
	t10, err := sys.CrossPWL(0, p, 0.1)
	if err != nil {
		return 0, 0, err
	}
	t90, err := sys.CrossPWL(0, p, 0.9)
	if err != nil {
		return 0, 0, err
	}
	return d, (t90 - t10) / 0.8, nil
}
