package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"elmore/internal/gate"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestCharacterizeAndUse(t *testing.T) {
	out, err := runCLI(t, "-name", "drv_x1", "-r", "500", "-d0", "2p",
		"-slews", "1p,100p", "-loads", "10f,100f")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := gate.ParseLibraryString(out)
	if err != nil {
		t.Fatalf("generated library does not parse: %v\n%s", err, out)
	}
	cell, err := lib.Get("drv_x1")
	if err != nil {
		t.Fatal(err)
	}
	// Step-like input, single pole: delay = d0 + RC ln2 (to within the
	// 1 ps ramp's effect), output slew ~ RC ln9.
	rc := 500 * 100e-15
	d := cell.Delay.Lookup(1e-12, 100e-15)
	if math.Abs(d-(2e-12+rc*math.Ln2)) > 0.05*rc {
		t.Errorf("delay = %v, want ~%v", d, 2e-12+rc*math.Ln2)
	}
	s := cell.OutputSlew.Lookup(1e-12, 100e-15)
	if math.Abs(s-rc*math.Log(9)/0.8) > 0.1*rc {
		t.Errorf("slew = %v, want ~%v", s, rc*math.Log(9)/0.8)
	}
	// Monotone in load.
	if cell.Delay.Lookup(1e-12, 10e-15) >= d {
		t.Errorf("delay should grow with load")
	}
}

func TestMeasuredTablesMonotone(t *testing.T) {
	out, err := runCLI(t, "-r", "250", "-slews", "1p,50p,200p", "-loads", "5f,50f,500f")
	if err != nil {
		t.Fatal(err)
	}
	lib, err := gate.ParseLibraryString(out)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := lib.Get("cell_x1")
	if err != nil {
		t.Fatal(err)
	}
	for si := range cell.Delay.Slews {
		for li := 1; li < len(cell.Delay.Loads); li++ {
			if cell.Delay.Values[si][li] <= cell.Delay.Values[si][li-1] {
				t.Errorf("delay not monotone in load at row %d", si)
			}
		}
	}
	if !strings.Contains(out, "output_slew") {
		t.Errorf("missing output_slew table")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-r", "0"},
		{"-r", "zz"},
		{"-d0", "-1p"},
		{"-slews", "2p,1p"},
		{"-slews", "zz"},
		{"-loads", "-1f"},
		{"stray"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runCLI(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "chargen ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}
