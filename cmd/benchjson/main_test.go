package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const beforeOut = `goos: linux
goarch: amd64
pkg: elmore
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMomentsOrder6/n=100000         	      62	  20000000 ns/op	 3207309 B/op	      11 allocs/op
BenchmarkSimTransient/chain=1000         	      18	  69064603 ns/op	  561923 B/op	      21 allocs/op
ok  	elmore	12.3s
`

const afterOut = `cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMomentsOrder6/n=100000         	     120	  10000000 ns/op	 3207309 B/op	      11 allocs/op
BenchmarkSimPlanReuse/chain=1000-8      	     300	   4000000 ns/op	       0 B/op	       0 allocs/op
`

// A before pipe then an after merge must yield one document with both
// sides, speedups, names kept verbatim (sub-benchmark suffixes like
// workers-8 must not be collapsed), and the cpu line.
func TestRunMergeRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run([]string{"-label", "before", "-o", out},
		strings.NewReader(beforeOut), os.Stdout, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-label", "after", "-merge", "-o", out},
		strings.NewReader(afterOut), os.Stdout, os.Stderr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc ledger
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.CPU != "Intel(R) Xeon(R) CPU @ 2.10GHz" {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(doc.Benchmarks))
	}
	mo := doc.Benchmarks["MomentsOrder6/n=100000"]
	if mo == nil || mo.Before == nil || mo.After == nil {
		t.Fatalf("MomentsOrder6 entry incomplete: %+v", mo)
	}
	if mo.Speedup != 2 {
		t.Fatalf("speedup = %v, want 2", mo.Speedup)
	}
	if mo.Before.BOp != 3207309 || mo.Before.AllocsOp != 11 {
		t.Fatalf("before metrics = %+v", mo.Before)
	}
	st := doc.Benchmarks["SimTransient/chain=1000"]
	if st == nil || st.Before == nil || st.After != nil || st.Speedup != 0 {
		t.Fatalf("before-only entry = %+v", st)
	}
	pr := doc.Benchmarks["SimPlanReuse/chain=1000-8"]
	if pr == nil || pr.After == nil || pr.After.AllocsOp != 0 {
		t.Fatalf("after-only entry = %+v", pr)
	}
}

// Empty input and a bad label are errors; a merge against a missing
// file is not.
func TestRunErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH.json")
	if err := run([]string{"-o", out}, strings.NewReader("no benches here\n"), os.Stdout, os.Stderr); err == nil {
		t.Fatal("want error on empty input")
	}
	if err := run([]string{"-label", "sideways", "-o", out},
		strings.NewReader(beforeOut), os.Stdout, os.Stderr); err == nil {
		t.Fatal("want error on bad label")
	}
	if err := run([]string{"-merge", "-o", out},
		strings.NewReader(beforeOut), os.Stdout, os.Stderr); err != nil {
		t.Fatalf("merge with missing file: %v", err)
	}
}

// The -diff mode must compare two committed ledgers per benchmark:
// shared entries get a ratio, one-sided entries are listed, and the
// geometric mean summarizes the shared set.
func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	baseP := filepath.Join(dir, "BASE.json")
	candP := filepath.Join(dir, "CAND.json")
	if err := run([]string{"-label", "after", "-o", baseP},
		strings.NewReader(beforeOut), os.Stdout, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-label", "after", "-o", candP},
		strings.NewReader(afterOut), os.Stdout, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-diff", baseP, candP},
		strings.NewReader(""), &out, os.Stderr); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"MomentsOrder6/n=100000", "2.00x", // 20ms -> 10ms
		"SimTransient/chain=1000", "baseline only",
		"SimPlanReuse/chain=1000-8", "candidate only",
		"geomean (1 shared)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	// Wrong arity and unreadable files are errors.
	if err := run([]string{"-diff", baseP}, strings.NewReader(""), &out, os.Stderr); err == nil {
		t.Error("one-file -diff should fail")
	}
	if err := run([]string{"-diff", baseP, filepath.Join(dir, "missing.json")},
		strings.NewReader(""), &out, os.Stderr); err == nil {
		t.Error("missing candidate should fail")
	}
}
