// Command benchjson converts `go test -bench -benchmem` output into a
// JSON ledger committed next to the code, so performance numbers are
// diffable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -label after -merge -o BENCH_3.json
//
// Each benchmark line becomes an entry keyed by its name with the
// "Benchmark" prefix stripped (the rest is kept verbatim — a
// -GOMAXPROCS suffix is indistinguishable from a sub-benchmark name
// like workers-8, so before and after must be measured with the same
// GOMAXPROCS) holding ns/op, B/op and allocs/op under the chosen label
// ("before" or "after"). With -merge, entries already in the output
// file are kept, so a before ledger can be filled in with after
// numbers later. When an entry has both sides,
// speedup = before.ns_op / after.ns_op is recorded.
//
// Comparison mode:
//
//	benchjson -diff BASELINE.json CANDIDATE.json
//
// reads two committed ledgers and prints a per-benchmark speedup table
// (baseline ns/op over candidate ns/op; >1 means the candidate is
// faster) plus the geometric-mean ratio over the shared entries, so
// BENCH_N.json deltas across PRs need no manual comparison. Each
// side's "after" metrics are used when present, falling back to
// "before".
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// metrics is one measured side of a benchmark entry.
type metrics struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// entry pairs the two sides of a benchmark and their ratio.
type entry struct {
	Before  *metrics `json:"before,omitempty"`
	After   *metrics `json:"after,omitempty"`
	Speedup float64  `json:"speedup,omitempty"`
}

// ledger is the on-disk document. Map keys are sorted by
// encoding/json, so the file is stable under re-runs.
type ledger struct {
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks map[string]*entry `json:"benchmarks"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkMomentsOrder6/n=100000  62  19508668 ns/op  3207309 B/op  11 allocs/op
//
// The B/op and allocs/op columns are optional (-benchmem may be off).
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "BENCH_3.json", "output JSON `file`")
	label := fs.String("label", "after", "which side the piped numbers are: before or after")
	merge := fs.Bool("merge", false, "load the output file first and merge into it")
	diff := fs.Bool("diff", false, "compare two committed ledgers: benchjson -diff BASELINE.json CANDIDATE.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff {
		if fs.NArg() != 2 {
			return errors.New("-diff needs exactly two ledger files: BASELINE.json CANDIDATE.json")
		}
		return runDiff(fs.Arg(0), fs.Arg(1), stdout)
	}
	if *label != "before" && *label != "after" {
		return fmt.Errorf("-label must be before or after, got %q", *label)
	}

	doc := &ledger{Benchmarks: map[string]*entry{}}
	if *merge {
		raw, err := os.ReadFile(*out)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: nothing to merge.
		case err != nil:
			return err
		default:
			if err := json.Unmarshal(raw, doc); err != nil {
				return fmt.Errorf("%s: %w", *out, err)
			}
			if doc.Benchmarks == nil {
				doc.Benchmarks = map[string]*entry{}
			}
		}
	}

	parsed := 0
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			doc.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		met := &metrics{}
		met.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			met.BOp, _ = strconv.ParseInt(m[3], 10, 64)
		}
		if m[4] != "" {
			met.AllocsOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		e := doc.Benchmarks[m[1]]
		if e == nil {
			e = &entry{}
			doc.Benchmarks[m[1]] = e
		}
		if *label == "before" {
			e.Before = met
		} else {
			e.After = met
		}
		parsed++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if parsed == 0 {
		return errors.New("no benchmark lines on stdin")
	}

	for _, e := range doc.Benchmarks {
		if e.Before != nil && e.After != nil && e.After.NsOp > 0 {
			e.Speedup = math.Round(100*e.Before.NsOp/e.After.NsOp) / 100
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchjson: %d %s entries -> %s (%d total)\n",
		parsed, *label, *out, len(doc.Benchmarks))
	return nil
}

// sideMetrics picks the measured side a ledger entry represents when
// compared across files: the after numbers when present (the ledger's
// final state), otherwise before.
func sideMetrics(e *entry) *metrics {
	if e == nil {
		return nil
	}
	if e.After != nil {
		return e.After
	}
	return e.Before
}

func loadLedger(path string) (*ledger, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &ledger{}
	if err := json.Unmarshal(raw, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// runDiff prints the per-benchmark speedup table between two committed
// ledgers. Ratio = baseline ns/op / candidate ns/op, so >1 means the
// candidate is faster. Entries present on only one side are listed so
// coverage changes are visible, and the geometric mean over the shared
// entries summarizes the delta in one number.
func runDiff(basePath, candPath string, stdout io.Writer) error {
	base, err := loadLedger(basePath)
	if err != nil {
		return err
	}
	cand, err := loadLedger(candPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base.Benchmarks)+len(cand.Benchmarks))
	seen := map[string]bool{}
	for name := range base.Benchmarks {
		names = append(names, name)
		seen[name] = true
	}
	for name := range cand.Benchmarks {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "benchmark\tbaseline ns/op\tcandidate ns/op\tspeedup\n")
	logSum, shared := 0.0, 0
	for _, name := range names {
		b := sideMetrics(base.Benchmarks[name])
		c := sideMetrics(cand.Benchmarks[name])
		switch {
		case b == nil:
			fmt.Fprintf(w, "%s\t-\t%.0f\tcandidate only\n", name, c.NsOp)
		case c == nil:
			fmt.Fprintf(w, "%s\t%.0f\t-\tbaseline only\n", name, b.NsOp)
		case !(b.NsOp > 0) || !(c.NsOp > 0):
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t-\n", name, b.NsOp, c.NsOp)
		default:
			ratio := b.NsOp / c.NsOp
			fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.2fx\n", name, b.NsOp, c.NsOp, ratio)
			logSum += math.Log(ratio)
			shared++
		}
	}
	if shared > 0 {
		fmt.Fprintf(w, "geomean (%d shared)\t\t\t%.2fx\n", shared, math.Exp(logSum/float64(shared)))
	}
	return w.Flush()
}
