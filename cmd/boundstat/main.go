// Command boundstat runs a Monte-Carlo study of the paper's bounds on
// random RC trees: it verifies that the Elmore upper bound and the
// mu-sigma lower bound hold at every node (reporting any violation, of
// which there should be none) and prints tightness statistics —
// quantiles of actual/T_D and of the lower-bound gap — per input rise
// time. This quantifies "how conservative is the bound in practice",
// the question the paper's Section IV answers qualitatively.
//
// Usage:
//
//	boundstat [-trees 200] [-max-nodes 20] [-seed 1]
//	          [-rise step,0.5n,2n] [-chaininess 0.5]
//
// With -jobs FILE the tool instead evaluates an NDJSON stream of net
// jobs concurrently (see internal/batch for the job schema) and emits
// one NDJSON result line per job, in job order:
//
//	boundstat -jobs jobs.ndjson -workers 8 -timeout 30s > results.ndjson
//
// Batch runs carry full observability (PR 9): every result line has a
// trace_id minted per job (or continued from the spec's trace_id),
// -flight-dump FILE arms an always-on flight recorder that dumps its
// ring to FILE on SIGQUIT, panic, breaker-open or slow-job breach, and
// -slo p99=50ms,p50=5ms adds latency objectives to the -summary record
// and publishes good/bad/burn-rate gauges through -metrics:
//
//	boundstat -jobs jobs.ndjson -retries 2 -trace trace.ndjson \
//	          -flight-dump flight.ndjson -slo p99=50ms -summary
//
// Inspect the lineage afterwards with tracestat -by-trace.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"elmore/internal/cliutil"
	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "boundstat:", err)
		os.Exit(1)
	}
}

// quantiles returns min, p10, p50, p90, max of xs.
func quantiles(xs []float64) [5]float64 {
	sort.Float64s(xs)
	q := func(p float64) float64 {
		if len(xs) == 1 {
			return xs[0]
		}
		pos := p * float64(len(xs)-1)
		lo := int(pos)
		f := pos - float64(lo)
		if lo+1 >= len(xs) {
			return xs[len(xs)-1]
		}
		return xs[lo]*(1-f) + xs[lo+1]*f
	}
	return [5]float64{xs[0], q(0.1), q(0.5), q(0.9), xs[len(xs)-1]}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("boundstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nTrees     = fs.Int("trees", 200, "number of random trees")
		maxNodes   = fs.Int("max-nodes", 20, "max nodes per tree")
		seed       = fs.Int64("seed", 1, "base random seed")
		riseSpec   = fs.String("rise", "step,0.5n,2n", "comma-separated rise times ('step' for the ideal step)")
		chaininess = fs.Float64("chaininess", 0.5, "tree shape parameter in [0,1]")
	)
	cf := cliutil.Add(fs)
	bf := cliutil.AddBatch(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("boundstat"))
		return nil
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *nTrees < 1 || *maxNodes < 1 {
		return fmt.Errorf("-trees and -max-nodes must be positive")
	}
	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	if bf.Jobs != "" {
		// Batch mode replaces the Monte-Carlo study: net and transient
		// jobs from the NDJSON stream (no cell library, so path specs
		// fail soft), results streamed to stdout in job order, with
		// retry/degradation and the -resume journal handled by cliutil.
		return bf.RunBatch(sess.Context(), nil, 0, stdout, stderr)
	}
	ctx, root := telemetry.Start(sess.Context(), "boundstat.run")
	root.AttrInt("trees", int64(*nTrees))
	defer root.End()

	var sigs []signal.Signal
	for _, tok := range strings.Split(*riseSpec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "step" {
			sigs = append(sigs, signal.Step{})
			continue
		}
		tr, err := rctree.ParseValue(tok)
		if err != nil {
			return fmt.Errorf("-rise %q: %w", tok, err)
		}
		sigs = append(sigs, signal.SaturatedRamp{Tr: tr})
	}
	if len(sigs) == 0 {
		return fmt.Errorf("-rise: no signals")
	}

	ratios := make([][]float64, len(sigs))  // actual / T_D (or generalized upper)
	lowGaps := make([][]float64, len(sigs)) // (actual - lower) / actual
	violations := 0
	nodes := 0
	trees := 0

	mctx, msp := telemetry.Start(ctx, "measure")
	defer msp.End()
	for k := 0; k < *nTrees; k++ {
		tree := topo.Random(*seed+int64(k), topo.RandomOptions{
			N:          1 + (k % *maxNodes),
			Chaininess: *chaininess,
		})
		sys, err := exact.NewSystemContext(mctx, tree)
		if err != nil {
			return err
		}
		ms, err := moments.Compute(tree, 2)
		if err != nil {
			return err
		}
		trees++
		for i := 0; i < tree.N(); i++ {
			nodes++
			td := ms.Elmore(i)
			sigma := ms.Sigma(i)
			for si, sig := range sigs {
				actual, err := sys.Delay(i, sig, 0)
				if err != nil {
					return err
				}
				// Upper bound: T_D for steps and symmetric-derivative
				// ramps (Corollary 2).
				upper := td
				inMean := sig.DerivMean()
				lower := math.Max(td+inMean-math.Sqrt(sigma*sigma+sig.DerivMu2()), 0) - sig.Cross(0.5)
				if actual > upper*(1+1e-9) {
					violations++
					fmt.Fprintf(stdout, "VIOLATION upper: tree %d node %s sig %v: %g > %g\n",
						k, tree.Name(i), sig, actual, upper)
				}
				if actual < lower-1e-18 {
					violations++
					fmt.Fprintf(stdout, "VIOLATION lower: tree %d node %s sig %v: %g < %g\n",
						k, tree.Name(i), sig, actual, lower)
				}
				ratios[si] = append(ratios[si], actual/upper)
				if actual > 0 {
					lowGaps[si] = append(lowGaps[si], (actual-lower)/actual)
				}
			}
		}
	}

	fmt.Fprintf(stdout, "boundstat: %d trees, %d node-measurements, %d bound violations\n\n",
		trees, nodes, violations)
	fmt.Fprintf(stdout, "tightness of the Elmore upper bound (actual delay / bound):\n")
	fmt.Fprintf(stdout, "%-14s %8s %8s %8s %8s %8s\n", "input", "min", "p10", "p50", "p90", "max")
	for si, sig := range sigs {
		q := quantiles(ratios[si])
		fmt.Fprintf(stdout, "%-14v %8.3f %8.3f %8.3f %8.3f %8.3f\n", sig, q[0], q[1], q[2], q[3], q[4])
	}
	fmt.Fprintf(stdout, "\nrelative slack of the lower bound ((actual - lower) / actual):\n")
	fmt.Fprintf(stdout, "%-14s %8s %8s %8s %8s %8s\n", "input", "min", "p10", "p50", "p90", "max")
	for si, sig := range sigs {
		q := quantiles(lowGaps[si])
		fmt.Fprintf(stdout, "%-14v %8.3f %8.3f %8.3f %8.3f %8.3f\n", sig, q[0], q[1], q[2], q[3], q[4])
	}
	if violations > 0 {
		return fmt.Errorf("%d bound violations detected", violations)
	}
	return nil
}
