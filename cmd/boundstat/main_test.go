package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestSmallStudyNoViolations(t *testing.T) {
	out, err := runCLI(t, "-trees", "40", "-max-nodes", "10", "-rise", "step,1n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 bound violations") {
		t.Errorf("expected zero violations:\n%s", out)
	}
	if !strings.Contains(out, "tightness of the Elmore upper bound") {
		t.Errorf("missing tightness table")
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("violations reported:\n%s", out)
	}
}

func TestRatiosAreWithinUnitInterval(t *testing.T) {
	out, err := runCLI(t, "-trees", "30", "-max-nodes", "8", "-rise", "step")
	if err != nil {
		t.Fatal(err)
	}
	// The max ratio column must be <= 1 (bound never violated).
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "step") && i > 0 && strings.Contains(lines[i-1], "p90") {
			fields := strings.Fields(l)
			if len(fields) != 6 {
				t.Fatalf("row format: %q", l)
			}
			if fields[5] > "1.001" && !strings.HasPrefix(fields[5], "0") && !strings.HasPrefix(fields[5], "1.000") {
				t.Errorf("max ratio exceeds 1: %q", l)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCLI(t, "-rise", "zzz"); err == nil {
		t.Errorf("bad rise should fail")
	}
	if _, err := runCLI(t, "-trees", "0"); err == nil {
		t.Errorf("zero trees should fail")
	}
	if _, err := runCLI(t, "stray"); err == nil {
		t.Errorf("stray arg should fail")
	}
	if _, err := runCLI(t, "-rise", " "); err == nil {
		t.Errorf("empty rise should fail")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runCLI(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "boundstat ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}

func TestBatchMode(t *testing.T) {
	dir := t.TempDir()
	netPath := filepath.Join(dir, "net.sp")
	deck := "Vin in 0 1\nR1 in a 100\nC1 a 0 20f\nR2 a z 150\nC2 z 0 30f\n"
	if err := os.WriteFile(netPath, []byte(deck), 0o644); err != nil {
		t.Fatal(err)
	}
	jobsPath := filepath.Join(dir, "jobs.ndjson")
	jobs := fmt.Sprintf("{\"id\":\"n1\",\"net\":%q,\"sinks\":[\"z\"],\"rise\":\"1n\"}\n{\"id\":\"n2\",\"net\":%q}\n", netPath, netPath)
	if err := os.WriteFile(jobsPath, []byte(jobs), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-jobs", jobsPath, "-workers", "2", "-timeout", "30s")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), out)
	}
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if rec["error"] != nil {
			t.Errorf("line %d unexpected error: %v", i, rec["error"])
		}
	}
	if !strings.Contains(lines[0], `"id":"n1"`) || !strings.Contains(lines[1], `"id":"n2"`) {
		t.Errorf("results out of job order:\n%s", out)
	}
	// Monte-Carlo output must not appear in batch mode.
	if strings.Contains(out, "tightness") {
		t.Errorf("batch mode ran the Monte-Carlo study:\n%s", out)
	}
}

func TestBatchModeFailSoftExit(t *testing.T) {
	dir := t.TempDir()
	jobsPath := filepath.Join(dir, "jobs.ndjson")
	if err := os.WriteFile(jobsPath, []byte("{\"id\":\"bad\",\"net\":\"missing.sp\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-jobs", jobsPath)
	if err == nil || !strings.Contains(err.Error(), "1 of 1 jobs failed") {
		t.Errorf("failed jobs must fail the run: %v", err)
	}
	// The error record is still emitted before the nonzero exit.
	if !strings.Contains(out, `"error"`) {
		t.Errorf("missing error record:\n%s", out)
	}
	if _, err := runCLI(t, "-jobs", filepath.Join(dir, "absent.ndjson")); err == nil {
		t.Errorf("missing jobs file should fail")
	}
}
