package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), err
}

func TestSmallStudyNoViolations(t *testing.T) {
	out, err := runCLI(t, "-trees", "40", "-max-nodes", "10", "-rise", "step,1n")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 bound violations") {
		t.Errorf("expected zero violations:\n%s", out)
	}
	if !strings.Contains(out, "tightness of the Elmore upper bound") {
		t.Errorf("missing tightness table")
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("violations reported:\n%s", out)
	}
}

func TestRatiosAreWithinUnitInterval(t *testing.T) {
	out, err := runCLI(t, "-trees", "30", "-max-nodes", "8", "-rise", "step")
	if err != nil {
		t.Fatal(err)
	}
	// The max ratio column must be <= 1 (bound never violated).
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "step") && i > 0 && strings.Contains(lines[i-1], "p90") {
			fields := strings.Fields(l)
			if len(fields) != 6 {
				t.Fatalf("row format: %q", l)
			}
			if fields[5] > "1.001" && !strings.HasPrefix(fields[5], "0") && !strings.HasPrefix(fields[5], "1.000") {
				t.Errorf("max ratio exceeds 1: %q", l)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCLI(t, "-rise", "zzz"); err == nil {
		t.Errorf("bad rise should fail")
	}
	if _, err := runCLI(t, "-trees", "0"); err == nil {
		t.Errorf("zero trees should fail")
	}
	if _, err := runCLI(t, "stray"); err == nil {
		t.Errorf("stray arg should fail")
	}
	if _, err := runCLI(t, "-rise", " "); err == nil {
		t.Errorf("empty rise should fail")
	}
}

func TestVersionFlag(t *testing.T) {
	out, err := runCLI(t, "-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "boundstat ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}
