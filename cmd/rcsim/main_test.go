package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const demoDeck = `Vin in 0 1
R1 in n1 1k
C1 n1 0 1p
R2 n1 n2 1k
C2 n2 0 1p
`

func runCLI(t *testing.T, args []string, stdin string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestParseInput(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"step", "step"},
		{"", "step"},
		{"ramp:1n", "ramp(tr=1e-09)"},
		{"cos:2n", "raised-cosine(tr=2e-09)"},
		{"exp:500p", "exp(tau=5e-10)"},
	}
	for _, tc := range cases {
		s, err := parseInput(tc.spec)
		if err != nil {
			t.Errorf("%q: %v", tc.spec, err)
			continue
		}
		if s.String() != tc.want {
			t.Errorf("%q -> %v, want %v", tc.spec, s, tc.want)
		}
	}
	for _, bad := range []string{"ramp", "tri:1n", "ramp:xyz", "ramp:-1n"} {
		if _, err := parseInput(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestSimulateCSV(t *testing.T) {
	out, _, err := runCLI(t, []string{"-tend", "20n", "-dt", "10p"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time,input,n1,n2" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 2002 {
		t.Fatalf("rows = %d, want 2002", len(lines))
	}
	last := strings.Split(lines[len(lines)-1], ",")
	v, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.99 {
		t.Errorf("n2 final = %v, want ~1", v)
	}
}

func TestProbeSelectionAndFile(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "wave.csv")
	_, _, err := runCLI(t, []string{"-probe", "n2", "-tend", "10n", "-o", outPath, "-method", "be", "-input", "ramp:1n"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time,input,n2\n") {
		t.Errorf("file header wrong: %q", string(data[:20]))
	}
}

func TestInputColumnTracksSignal(t *testing.T) {
	out, _, err := runCLI(t, []string{"-tend", "2n", "-dt", "1n", "-input", "ramp:2n"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	mid := strings.Split(lines[2], ",") // t = 1n
	if v, _ := strconv.ParseFloat(mid[1], 64); v != 0.5 {
		t.Errorf("input at 1n = %v, want 0.5", v)
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := runCLI(t, []string{"-probe", "zz"}, demoDeck); err == nil {
		t.Errorf("unknown probe should fail")
	}
	if _, _, err := runCLI(t, []string{"-method", "rk4"}, demoDeck); err == nil {
		t.Errorf("unknown method should fail")
	}
	if _, _, err := runCLI(t, []string{"-tend", "zz"}, demoDeck); err == nil {
		t.Errorf("bad tend should fail")
	}
	if _, _, err := runCLI(t, []string{"-dt", "zz"}, demoDeck); err == nil {
		t.Errorf("bad dt should fail")
	}
	if _, _, err := runCLI(t, nil, "garbage"); err == nil {
		t.Errorf("bad deck should fail")
	}
	if _, _, err := runCLI(t, []string{"a", "b"}, demoDeck); err == nil {
		t.Errorf("two files should fail")
	}
}

func TestAdaptiveFlag(t *testing.T) {
	out, _, err := runCLI(t, []string{"-adaptive", "1e-6", "-tend", "20n"}, demoDeck)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 10 {
		t.Fatalf("too few samples: %d", len(lines))
	}
	last := strings.Split(lines[len(lines)-1], ",")
	v, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.99 {
		t.Errorf("adaptive final = %v, want ~1", v)
	}
	// -adaptive <= 0 falls back to fixed stepping.
	if _, _, err := runCLI(t, []string{"-adaptive", "-1", "-tend", "5n"}, demoDeck); err != nil {
		t.Errorf("non-positive tolerance should fall back to fixed: %v", err)
	}
}

func TestVersionFlag(t *testing.T) {
	out, _, err := runCLI(t, []string{"-version"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "rcsim ") || !strings.Contains(out, "go1") {
		t.Errorf("version output wrong: %q", out)
	}
}
