// Command rcsim is a transient simulator for RC-tree netlists. It
// integrates the circuit with the trapezoidal rule (or backward Euler)
// and writes the probed node waveforms as CSV.
//
// Usage:
//
//	rcsim [-input ramp:1n] [-tend 10n] [-dt 1p] [-method trap|be]
//	      [-probe n1,n2] [-o out.csv] [netlist.sp]
//
// The -input spec is one of: step, ramp:<tr>, cos:<tr>, exp:<tau>,
// with SPICE-style values (1n, 500p, ...).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"elmore/internal/cliutil"
	"elmore/internal/netlist"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sim"
	"elmore/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rcsim:", err)
		os.Exit(1)
	}
}

// parseInput parses the -input spec.
func parseInput(spec string) (signal.Signal, error) {
	if spec == "" || spec == "step" {
		return signal.Step{}, nil
	}
	kind, valStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("input spec %q: want step, ramp:<tr>, cos:<tr> or exp:<tau>", spec)
	}
	v, err := rctree.ParseValue(valStr)
	if err != nil {
		return nil, fmt.Errorf("input spec %q: %w", spec, err)
	}
	var s signal.Signal
	switch kind {
	case "ramp":
		s = signal.SaturatedRamp{Tr: v}
	case "cos":
		s = signal.RaisedCosine{Tr: v}
	case "exp":
		s = signal.Exponential{Tau: v}
	default:
		return nil, fmt.Errorf("input spec %q: unknown kind %q", spec, kind)
	}
	if err := signal.Validate(s); err != nil {
		return nil, err
	}
	return s, nil
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("rcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		inputSpec = fs.String("input", "step", "input signal: step, ramp:<tr>, cos:<tr>, exp:<tau>")
		tendStr   = fs.String("tend", "", "simulation horizon (e.g. 10n); default auto")
		dtStr     = fs.String("dt", "", "time step (e.g. 1p); default tend/4096")
		method    = fs.String("method", "trap", "integration method: trap or be")
		probeStr  = fs.String("probe", "", "comma-separated node names to record (default: all)")
		outPath   = fs.String("o", "", "output CSV path (default stdout)")
		adaptive  = fs.Float64("adaptive", 0, "if > 0, use adaptive stepping with this local error tolerance (volts/step)")
	)
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("rcsim"))
		return nil
	}
	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	ctx, root := telemetry.Start(sess.Context(), "rcsim.run")
	defer root.End()

	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one netlist file")
	}
	_, psp := telemetry.Start(ctx, "parse")
	deck, err := netlist.Parse(in)
	psp.End()
	if err != nil {
		return err
	}
	for _, w := range deck.Warnings {
		fmt.Fprintln(stderr, "warning:", w)
	}
	tree := deck.Tree

	sig, err := parseInput(*inputSpec)
	if err != nil {
		return err
	}
	opts := sim.Options{Input: sig}
	if *tendStr != "" {
		if opts.TEnd, err = rctree.ParseValue(*tendStr); err != nil {
			return fmt.Errorf("-tend: %w", err)
		}
	}
	if *dtStr != "" {
		if opts.DT, err = rctree.ParseValue(*dtStr); err != nil {
			return fmt.Errorf("-dt: %w", err)
		}
	}
	switch *method {
	case "trap", "trapezoidal":
		opts.Method = sim.Trapezoidal
	case "be", "euler", "backward-euler":
		opts.Method = sim.BackwardEuler
	default:
		return fmt.Errorf("-method: unknown %q", *method)
	}

	var probeNames []string
	if *probeStr != "" {
		for _, name := range strings.Split(*probeStr, ",") {
			name = strings.TrimSpace(name)
			i, ok := tree.Index(name)
			if !ok {
				return fmt.Errorf("-probe: no node named %q", name)
			}
			opts.Probes = append(opts.Probes, i)
			probeNames = append(probeNames, name)
		}
	} else {
		for _, i := range tree.PreOrder() {
			opts.Probes = append(opts.Probes, i)
			probeNames = append(probeNames, tree.Name(i))
		}
	}

	sctx, ssp := telemetry.Start(ctx, "simulate")
	var res *sim.Result
	if *adaptive > 0 {
		res, err = sim.RunAdaptiveContext(sctx, tree, opts, *adaptive)
	} else {
		res, err = sim.RunContext(sctx, tree, opts)
	}
	ssp.End()
	if err != nil {
		return err
	}

	_, wsp := telemetry.Start(ctx, "write")
	defer wsp.End()
	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	// Header: time, input, then probes.
	fmt.Fprintf(out, "time,input")
	for _, name := range probeNames {
		fmt.Fprintf(out, ",%s", name)
	}
	fmt.Fprintln(out)
	volts := make([][]float64, len(opts.Probes))
	for k, node := range opts.Probes {
		if volts[k], err = res.Voltages(node); err != nil {
			return err
		}
	}
	for step, t := range res.Times {
		fmt.Fprintf(out, "%.9g,%.6g", t, sig.Eval(t))
		for k := range volts {
			fmt.Fprintf(out, ",%.6g", volts[k][step])
		}
		fmt.Fprintln(out)
	}
	return nil
}
