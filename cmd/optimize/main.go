// Command optimize sizes the wires of an RC tree by coordinate
// descent: minimize the worst-leaf Elmore delay T_D under a total-
// capacitance budget. It is the proving workload for the incremental
// delta re-analysis engine — every probe is a SetR/SetC what-if,
// an order-1 region flush, a worst-leaf scan and a Revert, never a
// full recompute.
//
// Each node i carries a width multiplier w_i (starting at 1): the wire
// model is R_i = R0_i / w_i, C_i = C0_i * w_i, so widening a segment
// trades its resistance against its capacitance — the classic sizing
// knob (cf. Boyd's GP wire-sizing formulation). Candidate widths come
// from a fixed grid; a move is kept only when it strictly lowers the
// worst-leaf delay and keeps the total capacitance within budget.
//
// Usage:
//
//	optimize [-nodes 10000 -seed 1 | netlist.sp] [-budget 1.1]
//	         [-passes 4] [-widths 0.5,0.7,1,1.4,2] [-out sizes.txt]
//
// With a netlist argument the deck is read from the file; otherwise a
// seeded random topology of -nodes nodes is generated.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"elmore/internal/cliutil"
	"elmore/internal/core"
	"elmore/internal/moments"
	"elmore/internal/netlist"
	"elmore/internal/rctree"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "optimize:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes     = fs.Int("nodes", 10000, "node count for the generated topology (ignored with a netlist argument)")
		seed      = fs.Int64("seed", 1, "seed for the generated topology")
		budget    = fs.Float64("budget", 1.1, "total-capacitance budget as a multiple of the initial total")
		passes    = fs.Int("passes", 4, "maximum coordinate-descent passes over all nodes")
		widthsStr = fs.String("widths", "0.5,0.7,1,1.4,2", "candidate width multipliers (comma-separated, relative to the original wire)")
		outPath   = fs.String("out", "", "write final per-node widths to this file (name<TAB>width)")
		verbose   = fs.Bool("v", false, "log per-pass progress to stderr")
	)
	cf := cliutil.Add(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.Version {
		fmt.Fprintln(stdout, cliutil.Version("optimize"))
		return nil
	}
	sess, err := cf.Start(stderr)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, sess.Close()) }()
	_, root := telemetry.Start(sess.Context(), "optimize.run")
	defer root.End()

	widths, err := parseWidths(*widthsStr)
	if err != nil {
		return err
	}
	if *budget <= 0 {
		return fmt.Errorf("-budget must be positive, got %v", *budget)
	}
	if *passes < 1 {
		return fmt.Errorf("-passes must be >= 1, got %d", *passes)
	}

	var tree *rctree.Tree
	switch fs.NArg() {
	case 0:
		if *nodes < 2 {
			return fmt.Errorf("-nodes must be >= 2, got %d", *nodes)
		}
		tree = topo.Random(*seed, topo.RandomOptions{N: *nodes})
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		deck, perr := netlist.Parse(f)
		f.Close()
		if perr != nil {
			return perr
		}
		for _, w := range deck.Warnings {
			fmt.Fprintln(stderr, "warning:", w)
		}
		tree = deck.Tree
	default:
		return fmt.Errorf("at most one netlist file")
	}
	root.AttrInt("nodes", int64(tree.N()))

	res, err := optimize(tree, widths, *budget, *passes, *verbose, stderr)
	if err != nil {
		return err
	}
	report(stdout, tree, res)
	if *outPath != "" {
		if err := writeWidths(*outPath, tree, res.Widths); err != nil {
			return err
		}
	}
	return nil
}

func parseWidths(s string) ([]float64, error) {
	var ws []float64
	hasUnit := false
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.ParseFloat(part, 64)
		if err != nil || !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("-widths: %q is not a positive width multiplier", part)
		}
		if w == 1 {
			hasUnit = true
		}
		ws = append(ws, w)
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("-widths: no candidates")
	}
	if !hasUnit {
		// Width 1 (the original wire) must stay reachable, or the
		// optimizer cannot leave a node unsized.
		ws = append(ws, 1)
	}
	sort.Float64s(ws)
	return ws, nil
}

// result carries everything the optimization run learned.
type result struct {
	InitialWorst, FinalWorst   float64 // worst-leaf T_D (s)
	InitialTotalC, FinalTotalC float64
	CapBudget                  float64 // absolute budget (F)
	Passes, Moves, Probes      int
	Widths                     []float64 // final per-node multipliers
	WorstLeaf                  int       // final worst leaf (tree index)
	Stats                      moments.IncrementalStats
	Verified                   bool // final state re-checked against a full Analyze
}

// optimize runs coordinate descent over all nodes with the incremental
// engine doing every delay probe. The tree is left carrying the final
// sized values (SyncTree), and the final worst-leaf delay is verified
// bit-identical against a fresh full analysis before returning.
func optimize(tree *rctree.Tree, widths []float64, budgetFactor float64, maxPasses int, verbose bool, stderr io.Writer) (*result, error) {
	n := tree.N()
	leaves := tree.Leaves()
	inc, err := moments.NewIncremental(tree)
	if err != nil {
		return nil, err
	}
	// Original (width-1) element values; the candidate grid is always
	// relative to these, so repeated passes cannot drift.
	r0 := make([]float64, n)
	c0 := make([]float64, n)
	for i := 0; i < n; i++ {
		r0[i] = tree.R(i)
		c0[i] = tree.C(i)
	}
	res := &result{
		Widths:        make([]float64, n),
		InitialTotalC: inc.TotalC(),
	}
	for i := range res.Widths {
		res.Widths[i] = 1
	}
	res.CapBudget = budgetFactor * res.InitialTotalC

	worst := func() (float64, int) {
		wd, wi := math.Inf(-1), -1
		for _, l := range leaves {
			if d := inc.Elmore(l); d > wd {
				wd, wi = d, l
			}
		}
		return wd, wi
	}
	res.InitialWorst, _ = worst()
	best := res.InitialWorst

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for i := 0; i < n; i++ {
			bestW := res.Widths[i]
			bestDelay := best
			for _, w := range widths {
				if w == res.Widths[i] {
					continue
				}
				res.Probes++
				if err := inc.SetR(i, r0[i]/w); err != nil {
					return nil, err
				}
				if err := inc.SetC(i, c0[i]*w); err != nil {
					return nil, err
				}
				d, _ := worst()
				feasible := inc.TotalC() <= res.CapBudget
				inc.Revert()
				if feasible && d < bestDelay {
					bestDelay, bestW = d, w
				}
			}
			if bestW != res.Widths[i] {
				if err := inc.SetR(i, r0[i]/bestW); err != nil {
					return nil, err
				}
				if err := inc.SetC(i, c0[i]*bestW); err != nil {
					return nil, err
				}
				inc.Commit()
				res.Widths[i] = bestW
				best = bestDelay
				res.Moves++
				improved = true
			}
		}
		res.Passes = pass + 1
		if verbose {
			fmt.Fprintf(stderr, "pass %d: worst T_D %s, total C %s, %d moves\n",
				pass+1, rctree.FormatSeconds(best), rctree.FormatFarads(inc.TotalC()), res.Moves)
		}
		if !improved {
			break
		}
	}

	res.FinalWorst, res.WorstLeaf = worst()
	res.FinalTotalC = inc.TotalC()
	res.Stats = inc.Stats()

	// Hand the sized values back to the tree and verify the incremental
	// state against a from-scratch analysis — the bit-identity contract,
	// checked on every run, not only in tests.
	if err := inc.SyncTree(); err != nil {
		return nil, err
	}
	an, err := core.Analyze(tree)
	if err != nil {
		return nil, err
	}
	for _, l := range leaves {
		if an.Bounds[l].Elmore != inc.Elmore(l) {
			return nil, fmt.Errorf("optimize: incremental T_D(%s) diverged from full recompute: %v != %v",
				tree.Name(l), inc.Elmore(l), an.Bounds[l].Elmore)
		}
	}
	res.Verified = true
	return res, nil
}

func report(w io.Writer, tree *rctree.Tree, res *result) {
	impr := 0.0
	if res.InitialWorst > 0 {
		impr = 100 * (res.InitialWorst - res.FinalWorst) / res.InitialWorst
	}
	fmt.Fprintf(w, "nodes          %d\n", tree.N())
	fmt.Fprintf(w, "worst T_D      %s -> %s  (-%.1f%%) at %s\n",
		rctree.FormatSeconds(res.InitialWorst), rctree.FormatSeconds(res.FinalWorst), impr, tree.Name(res.WorstLeaf))
	fmt.Fprintf(w, "total C        %s -> %s  (budget %s)\n",
		rctree.FormatFarads(res.InitialTotalC), rctree.FormatFarads(res.FinalTotalC), rctree.FormatFarads(res.CapBudget))
	fmt.Fprintf(w, "passes         %d (%d moves, %d probes)\n", res.Passes, res.Moves, res.Probes)
	st := res.Stats
	fmt.Fprintf(w, "engine         %d sets, %d flushes, %d nodes touched (%.1f/flush), %d full fallbacks\n",
		st.Sets, st.Flushes, st.NodesTouched, float64(st.NodesTouched)/math.Max(float64(st.Flushes), 1), st.FullFallbacks)
	if res.Verified {
		fmt.Fprintf(w, "verified       final delays bit-identical to full recompute\n")
	}
}

func writeWidths(path string, tree *rctree.Tree, widths []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for i, w := range widths {
		fmt.Fprintf(f, "%s\t%g\n", tree.Name(i), w)
	}
	return f.Close()
}
