package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elmore/internal/moments"
	"elmore/internal/netlist"
	"elmore/internal/topo"
)

func runCLI(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errBuf bytes.Buffer
	err := run(args, &out, &errBuf)
	return out.String(), errBuf.String(), err
}

func TestOptimizeGeneratedTopology(t *testing.T) {
	out, _, err := runCLI(t, "-nodes", "200", "-seed", "3", "-passes", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"worst T_D", "total C", "verified"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOptimizeImprovesWorstDelay(t *testing.T) {
	tree := topo.Random(11, topo.RandomOptions{N: 150})
	res, err := optimize(tree, []float64{0.5, 1, 2}, 1.2, 3, false, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FinalWorst < res.InitialWorst) {
		t.Errorf("no improvement: %v -> %v", res.InitialWorst, res.FinalWorst)
	}
	if res.FinalTotalC > res.CapBudget {
		t.Errorf("budget violated: %v > %v", res.FinalTotalC, res.CapBudget)
	}
	if !res.Verified {
		t.Errorf("final state not verified against full recompute")
	}
	if res.Stats.FullFallbacks > res.Stats.Flushes/2 {
		t.Errorf("optimizer mostly fell back to full recompute: %+v", res.Stats)
	}
}

// The budget must bind: with zero headroom every move that adds
// capacitance is rejected, so total C can only go down.
func TestOptimizeRespectsBudget(t *testing.T) {
	tree := topo.Chain(80, 100, 1e-14)
	res, err := optimize(tree, []float64{0.5, 1, 2, 4}, 1.0, 2, false, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTotalC > res.InitialTotalC*(1+1e-12) {
		t.Errorf("total C grew past a 1.0x budget: %v -> %v", res.InitialTotalC, res.FinalTotalC)
	}
}

// The sized tree handed back by SyncTree must reproduce the reported
// final worst delay from scratch — the end-to-end bit-identity check.
func TestOptimizeSyncedTreeMatchesReport(t *testing.T) {
	tree := topo.Star(6, 20, 150, 5e-15)
	res, err := optimize(tree, []float64{0.7, 1, 1.4}, 1.3, 2, false, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := moments.Compute(tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	worst := math.Inf(-1)
	for _, l := range tree.Leaves() {
		if d := ms.Elmore(l); d > worst {
			worst = d
		}
	}
	if math.Float64bits(worst) != math.Float64bits(res.FinalWorst) {
		t.Errorf("synced tree worst T_D %v != reported %v", worst, res.FinalWorst)
	}
}

func TestOptimizeNetlistInputAndWidthsOut(t *testing.T) {
	dir := t.TempDir()
	deck := filepath.Join(dir, "net.sp")
	var sb strings.Builder
	if err := netlist.Write(&sb, topo.Chain(30, 120, 2e-14), "chain30"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(deck, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	widthsOut := filepath.Join(dir, "sizes.txt")
	out, _, err := runCLI(t, "-passes", "1", "-out", widthsOut, deck)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nodes          30") {
		t.Errorf("netlist input not used:\n%s", out)
	}
	data, err := os.ReadFile(widthsOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 30 {
		t.Errorf("widths file has %d lines, want 30", len(lines))
	}
}

func TestOptimizeFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-budget", "0"},
		{"-budget", "-1"},
		{"-passes", "0"},
		{"-widths", "0,-1"},
		{"-widths", ""},
		{"-nodes", "1"},
		{"a.sp", "b.sp"},
	} {
		if _, _, err := runCLI(t, args...); err == nil {
			t.Errorf("%v should fail", args)
		}
	}
}

func TestParseWidthsAddsUnit(t *testing.T) {
	ws, err := parseWidths("2,0.5")
	if err != nil {
		t.Fatal(err)
	}
	has1 := false
	for _, w := range ws {
		if w == 1 {
			has1 = true
		}
	}
	if !has1 {
		t.Errorf("width 1 must always be a candidate: %v", ws)
	}
}
