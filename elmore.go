// Package elmore is a timing-analysis toolkit for RC trees built around
// the results of Gupta, Tutuianu and Pileggi, "The Elmore Delay as a
// Bound for RC Trees with Generalized Input Signals" (DAC 1995 / IEEE
// TCAD 16(1), 1997):
//
//   - the Elmore delay T_D (first moment of the impulse response) is an
//     absolute upper bound on the 50% delay of any RC tree node;
//   - max(T_D - sigma, 0) is a lower bound, with sigma the impulse
//     response's standard deviation;
//   - both results extend from step inputs to any monotone input whose
//     derivative is unimodal (e.g. saturated ramps), and the actual
//     delay converges to T_D as the input rise time grows.
//
// The package exposes a compact facade over the internal engines:
//
//	tree := elmore.NewBuilder()                 // or ParseNetlist
//	n1 := tree.MustRoot("n1", 100, 1e-12)       // 100 ohm, 1 pF
//	tree.MustAttach(n1, "n2", 200, 2e-12)
//	t, _ := tree.Build()
//
//	rpt, _ := elmore.Analyze(t)                 // O(N) bounds per node
//	sys, _ := elmore.NewExactSystem(t)          // exact responses
//	d, _ := sys.Delay(1, elmore.Ramp(1e-9), 0)  // measured 50% delay
//
// Everything is stdlib-only Go. See DESIGN.md for the system inventory
// and EXPERIMENTS.md for the paper reproduction.
package elmore

import (
	"io"

	"elmore/internal/awe"
	"elmore/internal/core"
	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/netlist"
	"elmore/internal/pimodel"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sim"
	"elmore/internal/waveform"
)

// Tree is an RC tree: per-node resistance toward the source and
// capacitance to ground. Build one with NewBuilder or ParseNetlist.
type Tree = rctree.Tree

// Builder constructs trees incrementally; see NewBuilder.
type Builder = rctree.Builder

// Source is the pseudo-parent index of root nodes.
const Source = rctree.Source

// NewBuilder returns an empty RC tree builder.
func NewBuilder() *Builder { return rctree.NewBuilder() }

// Netlist is a parsed SPICE-style deck: the tree plus the input node
// name and any parse warnings.
type Netlist = netlist.Deck

// ParseNetlist reads a SPICE-style RC deck (R/C/V cards) and returns
// the tree it describes. See internal/netlist for the accepted syntax.
func ParseNetlist(r io.Reader) (*Netlist, error) { return netlist.Parse(r) }

// ParseNetlistString is ParseNetlist on a string.
func ParseNetlistString(s string) (*Netlist, error) { return netlist.ParseString(s) }

// FormatNetlist renders a tree as a SPICE-style deck that round-trips
// through ParseNetlist.
func FormatNetlist(t *Tree, title string) string { return netlist.Format(t, title) }

// Analysis holds the closed-form delay bounds (Elmore upper bound,
// mu-sigma lower bound, single-pole estimate, Penfield-Rubinstein
// bounds) for every node; see the core package for field documentation.
type Analysis = core.Analysis

// Bounds is the per-node bound set inside an Analysis.
type Bounds = core.Bounds

// InputBounds are the generalized-input (Corollary 2/3) delay bounds.
type InputBounds = core.InputBounds

// Analyze computes all closed-form delay bounds for every node in
// O(N). This is the paper's contribution in one call.
func Analyze(t *Tree) (*Analysis, error) { return core.Analyze(t) }

// ElmoreDelays returns just the Elmore delay at every node — the
// classic two-traversal O(N) computation.
func ElmoreDelays(t *Tree) []float64 { return moments.ElmoreDelays(t) }

// Moments computes transfer-function moments m_0..m_order at every
// node (order >= 1), the raw material for bounds and AWE.
func Moments(t *Tree, order int) (*MomentSet, error) { return moments.Compute(t, order) }

// MomentSet holds per-node transfer-function moments.
type MomentSet = moments.Set

// Incremental is a delta-update engine for what-if R/C perturbations:
// SetR/SetC/Revert/Commit with localized re-sweeps, every served value
// bit-identical to a full recompute. It is the engine behind
// Analysis.Reanalyze and cmd/optimize.
type Incremental = moments.Incremental

// NewIncremental binds a delta-update engine to a tree, computing the
// full order-3 moment and PRH state once.
func NewIncremental(t *Tree) (*Incremental, error) { return moments.NewIncremental(t) }

// ExactSystem evaluates machine-precision responses of a tree via
// eigen-decomposition: step/impulse/PWL waveforms, exact 50% delays,
// rise times, and impulse-response statistics. O(N^3) setup.
type ExactSystem = exact.System

// NewExactSystem builds the exact response engine. Every node needs
// strictly positive capacitance; see RegularizeTree.
func NewExactSystem(t *Tree) (*ExactSystem, error) { return exact.NewSystem(t) }

// RegularizeTree replaces zero capacitances with a tiny fraction of the
// smallest positive capacitance so the exact engine applies.
func RegularizeTree(t *Tree, frac float64) *Tree { return exact.Regularize(t, frac) }

// SimOptions configures the transient simulator.
type SimOptions = sim.Options

// SimResult holds simulated node waveforms.
type SimResult = sim.Result

// Simulate runs the MNA transient simulator (trapezoidal or backward
// Euler, O(N) per step) — the scalable ground truth for trees too large
// for NewExactSystem, and the only engine needed for zero-capacitance
// junction nodes.
func Simulate(t *Tree, opts SimOptions) (*SimResult, error) { return sim.Run(t, opts) }

// SimulateAdaptive runs the simulator with step-doubling local error
// control (tolerance in volts per step). Prefer Method: BackwardEuler
// for stiff circuits.
func SimulateAdaptive(t *Tree, opts SimOptions, tol float64) (*SimResult, error) {
	return sim.RunAdaptive(t, opts, tol)
}

// SimPlan is a reusable transient-simulation plan: the tree is
// compiled to its execution layout, the theta-method system stamped,
// and the tree LU factored exactly once per (tree, dt, method) triple.
// Executing the plan on many inputs then skips all of that setup. Like
// fingerprints, plans snapshot element values: mutate the tree with
// SetR/SetC and build a fresh plan.
type SimPlan = sim.Plan

// SimPlanOptions configures NewSimPlan.
type SimPlanOptions = sim.PlanOptions

// SimRunOptions configures one execution of a SimPlan.
type SimRunOptions = sim.RunOptions

// SimRunner executes a SimPlan with reusable per-run workspaces; see
// SimPlan.Runner.
type SimRunner = sim.Runner

// NewSimPlan compiles, stamps and factors a simulation plan for the
// tree. Options.DT must be positive.
func NewSimPlan(t *Tree, opts SimPlanOptions) (*SimPlan, error) { return sim.NewPlan(t, opts) }

// Signal is a normalized 0->1 input transition.
type Signal = signal.Signal

// Waveform is a sampled waveform with interpolation, crossings and
// density statistics.
type Waveform = waveform.Waveform

// Step returns the ideal unit step input.
func Step() Signal { return signal.Step{} }

// Ramp returns a saturated ramp with 0-100% rise time tr — the paper's
// canonical generalized input (uniform, unimodal, symmetric
// derivative).
func Ramp(tr float64) Signal { return signal.SaturatedRamp{Tr: tr} }

// SmoothRamp returns a raised-cosine transition of duration tr.
func SmoothRamp(tr float64) Signal { return signal.RaisedCosine{Tr: tr} }

// ExpEdge returns the RC-style edge 1 - exp(-t/tau): unimodal but
// skewed derivative (Corollary 2 applies; Corollary 3 does not).
func ExpEdge(tau float64) Signal { return signal.Exponential{Tau: tau} }

// PWLPoint is a breakpoint of a piecewise-linear input.
type PWLPoint = signal.Point

// PWLSignal builds a monotone piecewise-linear input from breakpoints
// (first value 0, last value 1).
func PWLSignal(points []PWLPoint) (Signal, error) { return signal.NewPWL(points) }

// PiModel is the O'Brien-Savarino 3-moment reduced load.
type PiModel = pimodel.Model

// ReduceToPi reduces the whole tree, as seen from the source, to a pi
// load matching its first three admittance moments.
func ReduceToPi(t *Tree) (PiModel, error) { return pimodel.ForInput(t) }

// ReduceNodeToPi reduces the subtree downstream of node i.
func ReduceNodeToPi(t *Tree, i int) (PiModel, error) { return pimodel.ForNode(t, i) }

// PRHTmin evaluates the Penfield-Rubinstein lower waveform bound at
// threshold v given T_P, T_D(i), T_R(i).
func PRHTmin(tp, td, tr, v float64) float64 { return core.PRHTmin(tp, td, tr, v) }

// PRHTmax evaluates the Penfield-Rubinstein upper waveform bound.
func PRHTmax(tp, td, tr, v float64) float64 { return core.PRHTmax(tp, td, tr, v) }

// CornerOptions describes an elementwise process-variation box for
// CornerIntervals.
type CornerOptions = core.CornerOptions

// CornerInterval is a guaranteed delay interval across a variation box.
type CornerInterval = core.CornerInterval

// CornerIntervals computes, for every node, a 50% step-delay interval
// guaranteed over all R/C values inside the variation box: the Elmore
// bound at the slow corner above, the mu-sigma bound across corners
// below.
func CornerIntervals(t *Tree, opts CornerOptions) ([]CornerInterval, error) {
	return core.CornerIntervals(t, opts)
}

// AWEApprox is a stable q-pole reduced-order model fitted to a node's
// moments (asymptotic waveform evaluation).
type AWEApprox = awe.Approx

// FitAWE fits the highest stable q-pole model with q <= order at the
// given node, falling back toward the single dominant pole. The moment
// set must have Order() >= 2 (>= 2*order for a full fit).
func FitAWE(ms *MomentSet, node, order int) (*AWEApprox, error) {
	return awe.FitStable(ms, node, order)
}

// SinglePoleModel returns the paper's dominant-time-constant model
// (eq. 14): one pole at 1/T_D, whose 50% delay is ln(2)*T_D.
func SinglePoleModel(elmoreDelay float64) (*AWEApprox, error) {
	return awe.SinglePole(elmoreDelay)
}

// FormatSeconds renders a time with an SI prefix, e.g. "550ps".
func FormatSeconds(t float64) string { return rctree.FormatSeconds(t) }

// FormatOhms renders a resistance with an SI prefix.
func FormatOhms(r float64) string { return rctree.FormatOhms(r) }

// FormatFarads renders a capacitance with an SI prefix.
func FormatFarads(c float64) string { return rctree.FormatFarads(c) }
