package elmore

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func buildDemo(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	n1 := b.MustRoot("drv", 100, 1e-12)
	n2 := b.MustAttach(n1, "wire", 200, 2e-12)
	b.MustAttach(n2, "load", 150, 3e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestFacadeWorkflow(t *testing.T) {
	tree := buildDemo(t)

	td := ElmoreDelays(tree)
	if len(td) != 3 || td[0] <= 0 {
		t.Fatalf("ElmoreDelays = %v", td)
	}

	rpt, err := Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	load, err := rpt.At("load")
	if err != nil {
		t.Fatal(err)
	}

	sys, err := NewExactSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	li := tree.MustIndex("load")
	actual, err := sys.Delay50Step(li)
	if err != nil {
		t.Fatal(err)
	}
	if actual > load.Elmore || actual < load.Lower {
		t.Errorf("bounds violated: %v not in [%v, %v]", actual, load.Lower, load.Elmore)
	}

	// Generalized input: the measured ramp delay respects the
	// Corollary 2 bound from the facade.
	ramp := Ramp(2e-9)
	d, err := sys.Delay(li, ramp, 0)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := rpt.ForInput(li, ramp)
	if err != nil {
		t.Fatal(err)
	}
	if d > ib.Upper || d < ib.Lower {
		t.Errorf("generalized bounds violated: %v not in [%v, %v]", d, ib.Lower, ib.Upper)
	}
}

func TestFacadeNetlistRoundTrip(t *testing.T) {
	tree := buildDemo(t)
	deck := FormatNetlist(tree, "demo net")
	parsed, err := ParseNetlistString(deck)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Tree.N() != tree.N() {
		t.Fatalf("round trip size mismatch")
	}
	got := ElmoreDelays(parsed.Tree)
	want := ElmoreDelays(tree)
	for i := range want {
		j := parsed.Tree.MustIndex(tree.Name(i))
		if math.Abs(got[j]-want[i]) > 1e-15 {
			t.Errorf("Elmore mismatch at %s", tree.Name(i))
		}
	}
	if _, err := ParseNetlist(strings.NewReader(deck)); err != nil {
		t.Errorf("ParseNetlist(reader): %v", err)
	}
}

func TestFacadeSimulate(t *testing.T) {
	tree := buildDemo(t)
	res, err := Simulate(tree, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform(tree.MustIndex("load"))
	if err != nil {
		t.Fatal(err)
	}
	if final := w.V[len(w.V)-1]; math.Abs(final-1) > 1e-2 {
		t.Errorf("final voltage %v", final)
	}
}

func TestFacadeSignalsAndFormatting(t *testing.T) {
	for _, sig := range []Signal{Step(), Ramp(1e-9), SmoothRamp(1e-9), ExpEdge(1e-9)} {
		if sig.Eval(1e9) != 1 {
			t.Errorf("%v should settle to 1", sig)
		}
	}
	p, err := PWLSignal([]PWLPoint{{T: 0, V: 0}, {T: 1e-9, V: 1}})
	if err != nil || p.Eval(0.5e-9) != 0.5 {
		t.Errorf("PWLSignal wrong: %v %v", p, err)
	}
	if FormatSeconds(5.5e-10) != "550ps" || FormatOhms(100) != "100ohm" || FormatFarads(1e-12) != "1pF" {
		t.Errorf("formatters wrong")
	}
}

func TestFacadePiAndAWE(t *testing.T) {
	tree := buildDemo(t)
	pi, err := ReduceToPi(tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi.TotalC()-tree.TotalC()) > 1e-20 {
		t.Errorf("pi total C mismatch")
	}
	if _, err := ReduceNodeToPi(tree, tree.MustIndex("wire")); err != nil {
		t.Fatal(err)
	}

	ms, err := Moments(tree, 6)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := FitAWE(ms, tree.MustIndex("load"), 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewExactSystem(tree)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := sys.Delay50Step(tree.MustIndex("load"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ap.Delay50()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-actual) > 0.02*actual {
		t.Errorf("AWE delay %v vs exact %v", d, actual)
	}
	sp, err := SinglePoleModel(ms.Elmore(0))
	if err != nil || sp.Order() != 1 {
		t.Errorf("SinglePoleModel: %v %v", sp, err)
	}
}

func TestFacadeRegularize(t *testing.T) {
	b := NewBuilder()
	j := b.MustRoot("j", 100, 0)
	b.MustAttach(j, "l", 100, 1e-12)
	tree, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExactSystem(tree); err == nil {
		t.Fatal("zero-cap tree should be rejected by the exact engine")
	}
	if _, err := NewExactSystem(RegularizeTree(tree, 0)); err != nil {
		t.Fatalf("regularized tree should work: %v", err)
	}
}

func TestFacadePRHelpers(t *testing.T) {
	if PRHTmin(1e-9, 0.5e-9, 0.2e-9, 0.5) > PRHTmax(1e-9, 0.5e-9, 0.2e-9, 0.5) {
		t.Errorf("PRH helpers inverted")
	}
}

// ExampleAnalyze demonstrates the quickstart flow from the package doc.
func ExampleAnalyze() {
	b := NewBuilder()
	n1 := b.MustRoot("n1", 100, 1e-12) // 100 ohm to the driver, 1 pF
	b.MustAttach(n1, "n2", 200, 2e-12)
	tree, _ := b.Build()

	rpt, _ := Analyze(tree)
	n2, _ := rpt.At("n2")
	fmt.Printf("T_D(n2) = %s (upper bound on the 50%% delay)\n", FormatSeconds(n2.Elmore))
	// Output: T_D(n2) = 700ps (upper bound on the 50% delay)
}
