// Interconnect: the paper's Fig. 2 scenario — a CMOS inverter driving a
// second gate through extracted RC interconnect. The switching driver
// is linearized (effective resistance + finite-rise-time ramp, the
// standard timing-analyzer model), the net arrives as a SPICE deck, and
// we compare every delay estimate at the receiving gate's input pin.
//
// Run with: go run ./examples/interconnect
package main

import (
	"fmt"
	"log"

	"elmore"
)

// The extracted net: driver output "out" through two wire segments to
// the receiver pin "g2in", with a branch to a via stub. The driver's
// effective resistance (a 0.9V CMOS inverter, slow-slew corner) is
// folded into R1.
const deck = `.title inverter driving inverter through extracted RC net
Vdrv out 0 1
Rdrv out  w1   220    ; driver effective resistance + contact
Cw1  w1   0    35f
Rw1  w1   w2   140    ; segment 1
Cw2  w2   0    55f
Rst  w2   stub 90     ; via stub
Cst  stub 0    20f
Rw2  w2   g2in 180    ; segment 2
Cg2  g2in 0    80f    ; receiver gate capacitance
.end
`

func main() {
	net, err := elmore.ParseNetlistString(deck)
	if err != nil {
		log.Fatal(err)
	}
	tree := net.Tree
	fmt.Printf("%s\nnodes: %d, total wire+load C: %s\n\n",
		net.Title, tree.N(), elmore.FormatFarads(tree.TotalC()))

	rpt, err := elmore.Analyze(tree)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := elmore.NewExactSystem(tree)
	if err != nil {
		log.Fatal(err)
	}
	pin := tree.MustIndex("g2in")
	bd := rpt.Bounds[pin]

	// The gate's output edge, characterized by the cell library as a
	// function of load: here a 120 ps saturated ramp.
	edge := elmore.Ramp(120e-12)

	actual, err := sys.Delay(pin, edge, 0)
	if err != nil {
		log.Fatal(err)
	}
	ib, err := rpt.ForInput(pin, edge)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Delay estimates at the receiver pin (120 ps input edge):")
	fmt.Printf("  %-34s %s\n", "exact 50% delay:", elmore.FormatSeconds(actual))
	fmt.Printf("  %-34s %s  (proven upper bound)\n", "Elmore T_D:", elmore.FormatSeconds(bd.Elmore))
	fmt.Printf("  %-34s %s  (proven lower bound)\n", "generalized mu-sigma lower:", elmore.FormatSeconds(ib.Lower))
	fmt.Printf("  %-34s %s  (can be optimistic!)\n", "single-pole ln2*T_D:", elmore.FormatSeconds(bd.SinglePole))
	fmt.Printf("  %-34s %s / %s\n", "PRH bounds (step input):",
		elmore.FormatSeconds(bd.PRHTmin), elmore.FormatSeconds(bd.PRHTmax))

	// Higher-order AWE when more accuracy is needed (paper Section V).
	ms, err := elmore.Moments(tree, 6)
	if err != nil {
		log.Fatal(err)
	}
	ap, err := elmore.FitAWE(ms, pin, 3)
	if err != nil {
		log.Fatal(err)
	}
	aweDelay, err := ap.Delay50()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-34s %s  (order %d)\n", "AWE moment-matched step delay:",
		elmore.FormatSeconds(aweDelay), ap.Order())

	// The receiver's own input edge rate — what the next stage of the
	// timing analysis needs — from the sigma metric vs exact.
	rt, err := sys.RiseTimeStep(pin, 0.1, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nOutput edge at the pin: exact 10-90%% = %s, sigma-based estimate = %s\n",
		elmore.FormatSeconds(rt), elmore.FormatSeconds(bd.RiseTime))

	// How conservative is the bound across realistic edges?
	fmt.Println("\nBound tightness vs driver edge rate:")
	for _, tr := range []float64{30e-12, 120e-12, 500e-12, 2e-9} {
		d, err := sys.Delay(pin, elmore.Ramp(tr), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  edge %8s: exact %10s  margin vs T_D %6.1f%%\n",
			elmore.FormatSeconds(tr), elmore.FormatSeconds(d),
			(bd.Elmore-d)/d*100)
	}
}
