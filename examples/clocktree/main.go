// Clocktree: bounding clock skew with the Elmore delay. A clock buffer
// drives a fanout-of-4, depth-3 distribution tree whose branches have
// mismatched wire loads. Because the Elmore delay is a *guaranteed
// upper bound* and mu-sigma a guaranteed lower bound, the difference
// max(upper) - min(lower) over the sinks is a certified skew bound —
// no simulation required. We then verify it against exact delays.
//
// Run with: go run ./examples/clocktree
package main

import (
	"fmt"
	"log"
	"math"

	"elmore"
)

func main() {
	tree := buildClockTree()
	fmt.Printf("clock tree: %d nodes, %d sinks, total C %s\n\n",
		tree.N(), len(tree.Leaves()), elmore.FormatFarads(tree.TotalC()))

	rpt, err := elmore.Analyze(tree)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := elmore.NewExactSystem(tree)
	if err != nil {
		log.Fatal(err)
	}

	var (
		minLower = math.Inf(1)
		maxUpper = 0.0
		minExact = math.Inf(1)
		maxExact = 0.0
	)
	fmt.Printf("%-10s %12s %12s %12s\n", "sink", "lower", "exact", "Elmore (UB)")
	for _, leaf := range tree.Leaves() {
		bd := rpt.Bounds[leaf]
		actual, err := sys.Delay50Step(leaf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12s %12s %12s\n", bd.Node,
			elmore.FormatSeconds(bd.Lower), elmore.FormatSeconds(actual),
			elmore.FormatSeconds(bd.Elmore))
		minLower = math.Min(minLower, bd.Lower)
		maxUpper = math.Max(maxUpper, bd.Elmore)
		minExact = math.Min(minExact, actual)
		maxExact = math.Max(maxExact, actual)
	}

	certified := maxUpper - minLower
	exactSkew := maxExact - minExact
	fmt.Printf("\ncertified skew bound (no simulation): %s\n", elmore.FormatSeconds(certified))
	fmt.Printf("exact skew:                           %s\n", elmore.FormatSeconds(exactSkew))
	if exactSkew > certified {
		log.Fatal("BUG: certified bound violated") // cannot happen (theorem)
	}

	// A realistic clock edge tightens the picture: as rise time grows,
	// each sink's delay climbs toward its Elmore value (Corollary 3), so
	// the spread of Elmore delays itself approximates the skew.
	fmt.Println("\nexact skew vs clock edge rate (climbs toward the Elmore spread):")
	elmoreSkew := elmoreSpread(rpt, tree)
	for _, tr := range []float64{50e-12, 200e-12, 1e-9, 5e-9} {
		lo, hi := math.Inf(1), 0.0
		for _, leaf := range tree.Leaves() {
			d, err := sys.Delay(leaf, elmore.Ramp(tr), 0)
			if err != nil {
				log.Fatal(err)
			}
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
		fmt.Printf("  edge %8s: skew %10s  (Elmore spread %s)\n",
			elmore.FormatSeconds(tr), elmore.FormatSeconds(hi-lo),
			elmore.FormatSeconds(elmoreSkew))
	}
}

// buildClockTree builds a depth-3, fanout-4 distribution with a
// deliberately lopsided far branch (longer wire to quadrant d).
func buildClockTree() *elmore.Tree {
	b := elmore.NewBuilder()
	root := b.MustRoot("hub", 60, 40e-15) // clock buffer output resistance
	quadrants := []struct {
		name string
		r    float64 // wire resistance to the quadrant
		c    float64
	}{
		{"qa", 120, 30e-15},
		{"qb", 140, 34e-15},
		{"qc", 160, 38e-15},
		{"qd", 260, 60e-15}, // long route across the die
	}
	for _, q := range quadrants {
		qn := b.MustAttach(root, q.name, q.r, q.c)
		for leaf := 1; leaf <= 4; leaf++ {
			// Each quadrant fans out to 4 local sinks through short
			// stubs; sink caps model flop clock pins.
			stubR := 80.0 + 15*float64(leaf)
			sinkC := 12e-15 + 2e-15*float64(leaf)
			b.MustAttach(qn, fmt.Sprintf("%s_s%d", q.name, leaf), stubR, sinkC)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// elmoreSpread returns max-min Elmore delay over the sinks.
func elmoreSpread(rpt *elmore.Analysis, tree *elmore.Tree) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, leaf := range tree.Leaves() {
		td := rpt.Bounds[leaf].Elmore
		lo = math.Min(lo, td)
		hi = math.Max(hi, td)
	}
	return hi - lo
}
