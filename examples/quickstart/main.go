// Quickstart: build a small RC net, compute the closed-form delay
// bounds, and check them against the exact response engine.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"elmore"
)

func main() {
	// A driver (100 ohm) into a short wire with a side load:
	//
	//	source -100Ω- drv(0.2pF) -150Ω- mid(0.3pF) -250Ω- far(0.5pF)
	//	                                    \-180Ω- tap(0.4pF)
	b := elmore.NewBuilder()
	drv := b.MustRoot("drv", 100, 0.2e-12)
	mid := b.MustAttach(drv, "mid", 150, 0.3e-12)
	b.MustAttach(mid, "far", 250, 0.5e-12)
	b.MustAttach(mid, "tap", 180, 0.4e-12)
	tree, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("Circuit:\n", tree)

	// O(N) closed-form bounds at every node.
	rpt, err := elmore.Analyze(tree)
	if err != nil {
		log.Fatal(err)
	}

	// Exact 50% delays for comparison (eigen-decomposition engine).
	sys, err := elmore.NewExactSystem(tree)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nStep-input delays (all bounds are proven, not heuristic):")
	fmt.Printf("%-6s %12s %12s %12s\n", "node", "lower", "actual", "Elmore (UB)")
	for i := 0; i < tree.N(); i++ {
		actual, err := sys.Delay50Step(i)
		if err != nil {
			log.Fatal(err)
		}
		bd := rpt.Bounds[i]
		fmt.Printf("%-6s %12s %12s %12s\n", bd.Node,
			elmore.FormatSeconds(bd.Lower),
			elmore.FormatSeconds(actual),
			elmore.FormatSeconds(bd.Elmore))
	}

	// The same bound holds for a realistic (finite rise time) input,
	// and tightens as the edge slows (paper Corollaries 2 and 3).
	far := tree.MustIndex("far")
	fmt.Println("\n50% delay at \"far\" under saturated-ramp inputs:")
	for _, tr := range []float64{0.1e-9, 0.5e-9, 2e-9, 10e-9} {
		d, err := sys.Delay(far, elmore.Ramp(tr), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rise %8s: delay %10s  (Elmore bound %s)\n",
			elmore.FormatSeconds(tr), elmore.FormatSeconds(d),
			elmore.FormatSeconds(rpt.Bounds[far].Elmore))
	}
}
