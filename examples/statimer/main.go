// Statimer: a three-stage gate + interconnect path timed with the
// paper's guarantees — the full "timing analyzer" workflow the paper's
// Section IV motivates. Cells come from NLDM-style characterization
// tables with effective-capacitance load reduction; each net's delay is
// bracketed by the generalized-input Elmore bounds; edge rates
// propagate by Appendix-B variance addition.
//
// Run with: go run ./examples/statimer
package main

import (
	"fmt"
	"log"

	"elmore"
	"elmore/internal/gate"
	"elmore/internal/route"
	"elmore/internal/sta"
)

func main() {
	// Characterized cells (synthesized from Thevenin models here; in a
	// real flow they come from a Liberty file).
	slews := []float64{1e-12, 20e-12, 80e-12, 320e-12, 1.2e-9}
	loads := []float64{1e-15, 20e-15, 80e-15, 320e-15, 1.2e-12}
	mustCell := func(name string, rdrv, d0 float64) *gate.Cell {
		c, err := gate.LinearCell(name, rdrv, d0, 0.08, 5e-12, slews, loads)
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	nand := mustCell("nand2_x1", 450, 8e-12)
	buf := mustCell("buf_x4", 180, 12e-12)
	inv := mustCell("inv_x2", 280, 6e-12)

	// Nets: one short local net, one routed multi-sink net (we time
	// through its farthest sink), one medium net.
	local := mustNet("Vin in 0 1\nR1 in a 90\nC1 a 0 14f\nR2 a z 110\nC2 z 0 22f\n")
	med := mustNet("Vin in 0 1\nR1 in m1 70\nC1 m1 0 18f\nR2 m1 m2 130\nC2 m2 0 25f\nR3 m2 m3 150\nC3 m3 0 30f\n")

	routedNet := route.Net{
		Driver:  route.Pin{Name: "drv", X: 0, Y: 0},
		DriverR: 1, // resistance handled by the cell model; keep the route's root tiny
		Sinks: []route.Pin{
			{Name: "ff_a", X: 120, Y: 40, C: 12e-15},
			{Name: "ff_b", X: 60, Y: 90, C: 10e-15},
		},
	}
	topo, err := route.MST(routedNet)
	if err != nil {
		log.Fatal(err)
	}
	routed, err := topo.RCTree(1, route.Parasitics{ROhmPerUnit: 0.3, CFaradPerUnit: 0.18e-15, MaxSegment: 25})
	if err != nil {
		log.Fatal(err)
	}

	path := sta.Path{
		InputSlew: 30e-12, // the launching flop's clock-to-Q edge
		Stages: []sta.Stage{
			{Cell: nand, Net: local, Sink: "z"},
			{Cell: buf, Net: routed, Sink: "ff_a"},
			{Cell: inv, Net: med, Sink: "m3"},
		},
	}
	res, err := sta.AnalyzePath(path)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stage-by-stage timing (all net bounds are certified):")
	fmt.Printf("%-10s %-6s %10s %10s %10s %10s %12s %12s\n",
		"cell", "sink", "Ceff", "gate", "net UB", "net LB", "arrival UB", "arrival LB")
	for _, st := range res.Stages {
		fmt.Printf("%-10s %-6s %10s %10s %10s %10s %12s %12s\n",
			st.Cell, st.Sink,
			elmore.FormatFarads(st.Ceff),
			elmore.FormatSeconds(st.GateDelay),
			elmore.FormatSeconds(st.NetElmore),
			elmore.FormatSeconds(st.NetLower),
			elmore.FormatSeconds(st.ArrivalUB),
			elmore.FormatSeconds(st.ArrivalLB))
	}
	fmt.Printf("\npath arrival window: [%s, %s]\n",
		elmore.FormatSeconds(res.ArrivalLB), elmore.FormatSeconds(res.ArrivalUB))
	fmt.Printf("final edge rate at the endpoint: %s (equivalent ramp)\n",
		elmore.FormatSeconds(res.Stages[len(res.Stages)-1].SinkSlew))

	// Setup check against a 2 ns clock with 150 ps setup: the UB makes
	// it a guarantee (for the net portion) rather than an estimate.
	const clk, setup = 2e-9, 150e-12
	slack := clk - setup - res.ArrivalUB
	fmt.Printf("\nsetup slack @ %s clock: %s (%s)\n",
		elmore.FormatSeconds(clk), elmore.FormatSeconds(slack),
		map[bool]string{true: "MET", false: "VIOLATED"}[slack >= 0])

	// Reconvergent fanin: the same endpoint driven from two launch
	// points merges to the *latest* window — graph-mode STA.
	g := sta.NewGraph()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(g.AddArc("ffA/Q", "u1/Z", sta.Stage{Cell: nand, Net: local, Sink: "z"}))
	must(g.AddArc("ffB/Q", "u1/Z", sta.Stage{Cell: buf, Net: med, Sink: "m3"}))
	must(g.AddArc("u1/Z", "ffC/D", sta.Stage{Cell: inv, Net: routed, Sink: "ff_a"}))
	gres, err := sta.AnalyzeGraph(g, map[string]sta.PointTiming{
		"ffA/Q": {ArrivalUB: 80e-12, ArrivalLB: 80e-12, Slew: 30e-12},
		"ffB/Q": {ArrivalUB: 40e-12, ArrivalLB: 40e-12, Slew: 60e-12},
	})
	if err != nil {
		log.Fatal(err)
	}
	end, err := gres.At("ffC/D")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconvergent-fanin endpoint ffC/D: window [%s, %s], edge %s\n",
		elmore.FormatSeconds(end.ArrivalLB), elmore.FormatSeconds(end.ArrivalUB),
		elmore.FormatSeconds(end.Slew))
}

func mustNet(deck string) *elmore.Tree {
	d, err := elmore.ParseNetlistString(deck)
	if err != nil {
		log.Fatal(err)
	}
	return d.Tree
}
