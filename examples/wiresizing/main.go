// Wiresizing: using the Elmore delay as the optimization objective —
// the use case the paper's introduction cites for synthesis, placement
// and routing ("the only delay metric which is easily measured in terms
// of net widths and lengths").
//
// A 10-segment line must carry a signal to a far load. Widening a
// segment by factor w divides its resistance by w and multiplies its
// capacitance by w. Under a total-width budget, we greedily reallocate
// width to whichever segment most reduces the *Elmore* delay, then show
// that the exact 50% delay improved in lockstep — safe, because the
// Elmore delay is a proven upper bound, so driving the bound down
// drives a certificate down, not just a heuristic.
//
// Run with: go run ./examples/wiresizing
package main

import (
	"fmt"
	"log"

	"elmore"
)

const (
	segments  = 10
	unitR     = 120.0   // ohms per unit-width segment
	unitC     = 18e-15  // farads per unit-width segment
	loadC     = 120e-15 // receiver load at the far end
	budget    = 2.0 * segments
	widthStep = 0.25
	maxWidth  = 6.0
)

// buildLine materializes the sized line as an RC tree. Width w scales
// each segment: R/w and C*w (plus the fixed far-end load).
func buildLine(widths []float64) *elmore.Tree {
	b := elmore.NewBuilder()
	prev := elmore.Source
	for i, w := range widths {
		c := unitC * w
		if i == len(widths)-1 {
			c += loadC
		}
		name := fmt.Sprintf("seg%d", i+1)
		if prev == elmore.Source {
			prev = b.MustRoot(name, unitR/w, c)
		} else {
			prev = b.MustAttach(prev, name, unitR/w, c)
		}
	}
	t, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return t
}

// farElmore returns the Elmore delay at the far end for a width vector.
func farElmore(widths []float64) float64 {
	t := buildLine(widths)
	td := elmore.ElmoreDelays(t)
	return td[t.N()-1]
}

func exactDelay(widths []float64) float64 {
	t := buildLine(widths)
	sys, err := elmore.NewExactSystem(t)
	if err != nil {
		log.Fatal(err)
	}
	d, err := sys.Delay50Step(t.N() - 1)
	if err != nil {
		log.Fatal(err)
	}
	return d
}

func main() {
	// Start uniform: every segment at width budget/segments.
	widths := make([]float64, segments)
	used := 0.0
	for i := range widths {
		widths[i] = budget / segments
		used += widths[i]
	}
	fmt.Printf("uniform line:  Elmore %s, exact %s\n",
		elmore.FormatSeconds(farElmore(widths)), elmore.FormatSeconds(exactDelay(widths)))

	// Greedy reallocation: repeatedly move widthStep from the segment
	// whose shrink hurts least to the segment whose growth helps most,
	// judged purely by the Elmore objective.
	for iter := 0; iter < 400; iter++ {
		base := farElmore(widths)
		bestGain := 0.0
		bestFrom, bestTo := -1, -1
		for from := 0; from < segments; from++ {
			if widths[from]-widthStep < widthStep {
				continue
			}
			for to := 0; to < segments; to++ {
				if to == from || widths[to]+widthStep > maxWidth {
					continue
				}
				widths[from] -= widthStep
				widths[to] += widthStep
				gain := base - farElmore(widths)
				widths[from] += widthStep
				widths[to] -= widthStep
				if gain > bestGain {
					bestGain, bestFrom, bestTo = gain, from, to
				}
			}
		}
		if bestFrom < 0 || bestGain <= 1e-18 {
			break
		}
		widths[bestFrom] -= widthStep
		widths[bestTo] += widthStep
	}

	fmt.Printf("sized line:    Elmore %s, exact %s\n",
		elmore.FormatSeconds(farElmore(widths)), elmore.FormatSeconds(exactDelay(widths)))
	fmt.Print("widths (driver -> load): ")
	for _, w := range widths {
		fmt.Printf("%.2f ", w)
	}
	fmt.Println("\n(the classic tapered-wire result: wide near the driver, narrow at the load)")

	// The certificate view: at every step the exact delay stayed below
	// the Elmore objective we optimized, so the sized wire's delay is
	// guaranteed, not estimated.
	t := buildLine(widths)
	rpt, err := elmore.Analyze(t)
	if err != nil {
		log.Fatal(err)
	}
	far := t.N() - 1
	fmt.Printf("\nfinal certificate at the load: delay in [%s, %s], exact %s\n",
		elmore.FormatSeconds(rpt.Bounds[far].Lower),
		elmore.FormatSeconds(rpt.Bounds[far].Elmore),
		elmore.FormatSeconds(exactDelay(widths)))
}
