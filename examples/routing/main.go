// Routing: pre-route delay estimation — the use the paper's intro
// cites for the Elmore metric in synthesis/placement/routing. A 6-sink
// net is routed two classic ways (rectilinear spanning tree with
// L-shaped edges vs single-trunk comb); each route is pi-lumped into an
// RC tree from per-unit parasitics, and the Elmore bound ranks the
// topologies per sink — with the exact engine confirming the ranking.
//
// Run with: go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"elmore"
	"elmore/internal/route"
)

func main() {
	net := route.Net{
		Driver:  route.Pin{Name: "drv", X: 50, Y: 0},
		DriverR: 150, // driving cell's effective resistance
		Sinks: []route.Pin{
			{Name: "u1", X: 10, Y: 40, C: 8e-15},
			{Name: "u2", X: 90, Y: 35, C: 6e-15},
			{Name: "u3", X: 95, Y: 80, C: 10e-15},
			{Name: "u4", X: 20, Y: 85, C: 7e-15},
			{Name: "u5", X: 55, Y: 120, C: 9e-15},
			{Name: "u6", X: 50, Y: 60, C: 5e-15},
		},
	}
	// 65nm-ish global wire: 0.35 ohm/um, 0.19 fF/um; lump every 20 um.
	par := route.Parasitics{ROhmPerUnit: 0.35, CFaradPerUnit: 0.19e-15, MaxSegment: 20}

	fmt.Printf("net: %d sinks, HPWL %.0f um\n\n", len(net.Sinks), net.HPWL())

	type routed struct {
		name string
		topo *route.Topology
		tree *elmore.Tree
	}
	var routes []routed
	mst, err := route.MST(net)
	if err != nil {
		log.Fatal(err)
	}
	trunk, err := route.Trunk(net)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []struct {
		name string
		topo *route.Topology
	}{{"spanning-L", mst}, {"trunk-comb", trunk}} {
		tree, err := r.topo.RCTree(net.DriverR, par)
		if err != nil {
			log.Fatal(err)
		}
		routes = append(routes, routed{r.name, r.topo, tree})
		fmt.Printf("%-12s wirelength %6.0f um, RC nodes %3d, wire C %s\n",
			r.name, r.topo.Wirelength(), tree.N(),
			elmore.FormatFarads(tree.TotalC()))
	}

	fmt.Println("\nper-sink delay (Elmore bound | exact 50%, step input):")
	fmt.Printf("%-6s", "sink")
	for _, r := range routes {
		fmt.Printf(" %26s", r.name)
	}
	fmt.Println()
	exacts := make([]*elmore.ExactSystem, len(routes))
	for k, r := range routes {
		if exacts[k], err = elmore.NewExactSystem(r.tree); err != nil {
			log.Fatal(err)
		}
	}
	for _, s := range net.Sinks {
		fmt.Printf("%-6s", s.Name)
		for k, r := range routes {
			i := r.tree.MustIndex(s.Name)
			td := elmore.ElmoreDelays(r.tree)[i]
			actual, err := exacts[k].Delay50Step(i)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12s | %11s", elmore.FormatSeconds(td), elmore.FormatSeconds(actual))
		}
		fmt.Println()
	}

	// The point of using the *bound* during physical design: whichever
	// topology wins by Elmore is guaranteed within the bound, and the
	// decision needs only O(N) arithmetic per candidate.
	fmt.Println("\nworst-sink comparison (the routing objective):")
	for k, r := range routes {
		td := elmore.ElmoreDelays(r.tree)
		worstTD, worstName := 0.0, ""
		for _, s := range net.Sinks {
			i := r.tree.MustIndex(s.Name)
			if td[i] > worstTD {
				worstTD, worstName = td[i], s.Name
			}
		}
		actual, err := exacts[k].Delay50Step(r.tree.MustIndex(worstName))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s worst sink %-4s Elmore %10s (exact %s)\n",
			r.name, worstName, elmore.FormatSeconds(worstTD), elmore.FormatSeconds(actual))
	}
}
