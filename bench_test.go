// Benchmarks regenerating every table and figure of the paper, plus
// scaling benchmarks for each engine. Run with:
//
//	go test -bench=. -benchmem
//
// The Table/Fig benchmarks time a full regeneration of the published
// artifact (workload construction + analysis + measurement), so their
// outputs are the reproduction itself; correctness of the produced
// rows/series is asserted by the tests in internal/repro.
package elmore_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"elmore"
	"elmore/internal/repro"
	"elmore/internal/telemetry"
	"elmore/internal/topo"
)

// --- Paper artifacts: one benchmark per table and figure. ---

func BenchmarkTableI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repro.TableI()
		if err != nil {
			b.Fatal(err)
		}
		if bad := res.Check(); len(bad) != 0 {
			b.Fatalf("structural violations: %v", bad)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repro.TableII()
		if err != nil {
			b.Fatal(err)
		}
		if bad := res.Check(); len(bad) != 0 {
			b.Fatalf("structural violations: %v", bad)
		}
	}
}

func BenchmarkFig3StepAndImpulse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4SymmetricDensity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := repro.Fig4(); len(s) != 1 {
			b.Fatal("series count")
		}
	}
}

func BenchmarkFig5DrivingPointResponse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12DelayCurves(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig12(nil)
		if err != nil {
			b.Fatal(err)
		}
		if bad := res.Check(); len(bad) != 0 {
			b.Fatalf("structural violations: %v", bad)
		}
	}
}

func BenchmarkFig13ImpulseFamily(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14ErrorSurface(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig14(nil)
		if err != nil {
			b.Fatal(err)
		}
		if bad := res.Check(); len(bad) != 0 {
			b.Fatalf("structural violations: %v", bad)
		}
	}
}

// --- Engine scaling: the O(N) claims behind the paper's "calculated
// so easily and efficiently" motivation. ---

func benchSizes() []int { return []int{100, 1000, 10000, 100000} }

func BenchmarkElmoreDelays(b *testing.B) {
	for _, n := range benchSizes() {
		tree := topo.Random(42, topo.RandomOptions{N: n})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				td := elmore.ElmoreDelays(tree)
				if td[0] <= 0 {
					b.Fatal("bad delay")
				}
			}
		})
	}
}

func BenchmarkAnalyzeBounds(b *testing.B) {
	for _, n := range benchSizes() {
		tree := topo.Random(42, topo.RandomOptions{N: n})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := elmore.Analyze(tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMomentsOrder6(b *testing.B) {
	for _, n := range benchSizes() {
		tree := topo.Random(42, topo.RandomOptions{N: n})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := elmore.Moments(tree, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactSystemBuild(b *testing.B) {
	for _, n := range []int{25, 50, 100, 200} {
		tree := topo.Random(42, topo.RandomOptions{N: n})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := elmore.NewExactSystem(tree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactDelay50(b *testing.B) {
	b.ReportAllocs()
	tree := topo.Random(42, topo.RandomOptions{N: 100})
	sys, err := elmore.NewExactSystem(tree)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Delay50Step(i % tree.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimTransient(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		tree := topo.Chain(n, 1, 1e-15)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := elmore.Simulate(tree, elmore.SimOptions{
					Probes: []int{n - 1},
					DT:     0, TEnd: 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}

// BenchmarkSimPlanReuse measures the steady-state cost of re-running a
// prebuilt simulation plan: compile/stamp/factor are paid once outside
// the loop and RunInto reuses one Result, so each op is the bare step
// loop and must not allocate.
func BenchmarkSimPlanReuse(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		tree := topo.Chain(n, 1, 1e-15)
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			// Same horizon/step policy Simulate defaults to.
			tEnd := 0.0
			for _, d := range elmore.ElmoreDelays(tree) {
				if 10*d > tEnd {
					tEnd = 10 * d
				}
			}
			plan, err := elmore.NewSimPlan(tree, elmore.SimPlanOptions{DT: tEnd / 4096})
			if err != nil {
				b.Fatal(err)
			}
			runner := plan.Runner()
			res := new(elmore.SimResult)
			opts := elmore.SimRunOptions{TEnd: tEnd, Probes: []int{n - 1}}
			// Warm-up populates res's buffers so the timed loop is the
			// pure steady state even at -benchtime=1x.
			if err := runner.RunInto(nil, opts, res); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runner.RunInto(nil, opts, res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAWEFitOrder3(b *testing.B) {
	b.ReportAllocs()
	tree := topo.Random(42, topo.RandomOptions{N: 200})
	ms, err := elmore.Moments(tree, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elmore.FitAWE(ms, i%tree.N(), 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPiReduction(b *testing.B) {
	tree := topo.Random(42, topo.RandomOptions{N: 10000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := elmore.ReduceToPi(tree); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetlistParse(b *testing.B) {
	deck := elmore.FormatNetlist(topo.Random(42, topo.RandomOptions{N: 5000}), "bench")
	b.SetBytes(int64(len(deck)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := elmore.ParseNetlistString(deck); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetlistFormat(b *testing.B) {
	tree := topo.Random(42, topo.RandomOptions{N: 5000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s := elmore.FormatNetlist(tree, "bench"); !strings.HasSuffix(s, ".end\n") {
			b.Fatal("bad deck")
		}
	}
}

// --- Incremental delta re-analysis vs full recompute. ---

// BenchmarkIncrementalSetC measures one what-if cycle on the engine: a
// single-node capacitance perturbation, a worst-case query (Sigma
// forces the full order-3 flush), and a revert. Compare against
// BenchmarkAnalyzeBounds at the same n for the full-recompute baseline
// it replaces.
func BenchmarkIncrementalSetC(b *testing.B) {
	for _, n := range benchSizes() {
		tree := topo.Random(42, topo.RandomOptions{N: n})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inc, err := elmore.NewIncremental(tree)
			if err != nil {
				b.Fatal(err)
			}
			leaf := n - 1
			c0 := tree.C(leaf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inc.SetC(leaf, c0*(1+float64(i%7))); err != nil {
					b.Fatal(err)
				}
				if s := inc.Sigma(leaf); s < 0 {
					b.Fatal("bad sigma")
				}
				inc.Revert()
			}
		})
	}
}

// BenchmarkIncrementalSetR is the resistance-side twin, probing with an
// order-1 query (Elmore) — the optimizer inner loop's actual shape.
func BenchmarkIncrementalSetR(b *testing.B) {
	for _, n := range benchSizes() {
		tree := topo.Random(42, topo.RandomOptions{N: n})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inc, err := elmore.NewIncremental(tree)
			if err != nil {
				b.Fatal(err)
			}
			leaf := n - 1
			r0 := tree.R(leaf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inc.SetR(leaf, r0*(1+float64(i%7))); err != nil {
					b.Fatal(err)
				}
				if d := inc.Elmore(leaf); d <= 0 {
					b.Fatal("bad delay")
				}
				inc.Revert()
			}
		})
	}
}

// --- Extension experiments beyond the paper's artifacts. ---

func BenchmarkExtPRHWaveformBounds(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series, err := repro.FigPRH("C5")
		if err != nil {
			b.Fatal(err)
		}
		if bad := repro.CheckPRHFigure(series); len(bad) != 0 {
			b.Fatalf("bracket violations: %v", bad)
		}
	}
}

func BenchmarkExtInputShapeStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := repro.InputShapeStudy("C5", 0.3e-9)
		if err != nil {
			b.Fatal(err)
		}
		if bad := repro.CheckInputShapes(rows); len(bad) != 0 {
			b.Fatalf("violations: %v", bad)
		}
	}
}

// --- Observability overhead. ---

// BenchmarkTelemetryDisabled measures the cost the telemetry hooks add
// to instrumented code when no registry or tracer is installed — the
// state every library consumer and un-flagged CLI run is in. It must
// stay at a few nanoseconds with zero allocations.
func BenchmarkTelemetryDisabled(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		_, sp := telemetry.Start(ctx, "bench.disabled")
		sp.AttrInt("i", int64(i))
		sp.End()
		telemetry.C("bench.disabled_counter").Add(1)
	}
}
