// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - PWL resolution when approximating smooth inputs for the exact
//     engine (accuracy vs cost of DefaultPWLSegments);
//   - trapezoidal vs backward-Euler integration at equal step counts;
//   - path-tracing moments vs the O(N^2) definitional Elmore sum;
//   - exact eigen engine vs transient simulation for obtaining one
//     "actual delay" (the two ground-truth strategies);
//   - tree simplification's effect on analysis cost for junction-heavy
//     netlists.
//
// Run with: go test -bench=Ablation -benchmem
package elmore_test

import (
	"fmt"
	"math"
	"testing"

	"elmore"
	"elmore/internal/exact"
	"elmore/internal/moments"
	"elmore/internal/rctree"
	"elmore/internal/signal"
	"elmore/internal/sim"
	"elmore/internal/topo"
)

// BenchmarkAblationPWLSegments measures raised-cosine delay extraction
// at increasing PWL resolution and reports the deviation from the
// finest resolution as "errps" (picoseconds), showing where added
// segments stop paying.
func BenchmarkAblationPWLSegments(b *testing.B) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		b.Fatal(err)
	}
	node := tree.MustIndex("C5")
	sig := signal.RaisedCosine{Tr: 1e-9}
	ref, err := sys.Delay(node, sig, 8192)
	if err != nil {
		b.Fatal(err)
	}
	for _, segs := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			b.ReportAllocs()
			var d float64
			for i := 0; i < b.N; i++ {
				if d, err = sys.Delay(node, sig, segs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(math.Abs(d-ref)*1e12, "errps")
		})
	}
}

// BenchmarkAblationIntegrator compares the two integration rules at the
// same step count, reporting the waveform error against the exact
// engine ("errmv", millivolts on a 1 V swing).
func BenchmarkAblationIntegrator(b *testing.B) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		b.Fatal(err)
	}
	node := tree.MustIndex("C5")
	const horizon, dt = 4e-9, 10e-12
	for _, m := range []sim.Method{sim.Trapezoidal, sim.BackwardEuler} {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(tree, sim.Options{TEnd: horizon, DT: dt, Method: m, Probes: []int{node}})
				if err != nil {
					b.Fatal(err)
				}
				w, err := res.Waveform(node)
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, tt := range []float64{0.5e-9, 1e-9, 2e-9} {
					if e := math.Abs(w.At(tt) - sys.VStep(node, tt)); e > worst {
						worst = e
					}
				}
			}
			b.ReportMetric(worst*1e3, "errmv")
		})
	}
}

// BenchmarkAblationElmoreAlgorithm compares the O(N) two-traversal
// Elmore computation with the O(N^2) definitional sum.
func BenchmarkAblationElmoreAlgorithm(b *testing.B) {
	tree := topo.Random(42, topo.RandomOptions{N: 2000})
	b.Run("path-tracing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			moments.ElmoreDelays(tree)
		}
	})
	b.Run("definitional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for node := 0; node < tree.N(); node += 100 { // 20 nodes only: full sweep is quadratic
				moments.ElmoreDelayDirect(tree, node)
			}
		}
	})
}

// BenchmarkAblationGroundTruth compares the two "actual delay"
// strategies end to end on a 60-node tree: eigen-decomposition + exact
// crossing vs transient simulation + sampled crossing.
func BenchmarkAblationGroundTruth(b *testing.B) {
	tree := topo.Random(7, topo.RandomOptions{N: 60})
	leaf := tree.Leaves()[0]
	b.Run("exact-eigen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys, err := exact.NewSystem(tree)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sys.Delay50Step(leaf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transient-sim", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(tree, sim.Options{Probes: []int{leaf}})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Cross(leaf, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSimplify measures how much the junction-merging
// transform shrinks analysis cost on an extraction-style netlist where
// 2 of every 3 nodes are zero-capacitance via/segment junctions.
func BenchmarkAblationSimplify(b *testing.B) {
	build := func(n int) *rctree.Tree {
		bld := rctree.NewBuilder()
		prev := bld.MustRoot("n0", 5, 0)
		for i := 1; i < n; i++ {
			c := 0.0
			if i%3 == 0 {
				c = 2e-15
			}
			prev = bld.MustAttach(prev, fmt.Sprintf("n%d", i), 5, c)
		}
		t, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	raw := build(3000)
	simplified, err := raw.Simplify()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("nodes: raw %d -> simplified %d", raw.N(), simplified.N())
	b.Run("raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := elmore.Analyze(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simplified", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := elmore.Analyze(simplified); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAWEOrder sweeps the moment-matching order,
// reporting delay error vs the exact value in picoseconds — the
// paper's "higher order approximations" accuracy/cost tradeoff.
func BenchmarkAblationAWEOrder(b *testing.B) {
	tree := topo.Fig1Tree()
	sys, err := exact.NewSystem(tree)
	if err != nil {
		b.Fatal(err)
	}
	node := tree.MustIndex("C5")
	want, err := sys.Delay50Step(node)
	if err != nil {
		b.Fatal(err)
	}
	ms, err := moments.Compute(tree, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, order := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("q=%d", order), func(b *testing.B) {
			b.ReportAllocs()
			var d float64
			for i := 0; i < b.N; i++ {
				ap, err := elmore.FitAWE(ms, node, order)
				if err != nil {
					b.Fatal(err)
				}
				if d, err = ap.Delay50(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(math.Abs(d-want)*1e12, "errps")
		})
	}
}
