#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke for elmored's two robustness
# contracts, driven by loadgen with seeded faults armed:
#
#   phase 1 (overload): at 2x the admitted capacity with serve.decode
#     delay faults firing, shed requests carry Retry-After, admitted
#     requests meet the -slo objectives, SLO rows land in /metrics,
#     and SIGTERM exits 0.
#
#   phase 2 (kill-and-restart): a journaled batch slowed by
#     batch.dispatch faults is SIGTERMed mid-flight; the process exits
#     0, dumps the flight ring, and a restart on the same journal dir
#     resumes the batch — loadgen asserts the union of the interrupted
#     and resumed streams is exactly-once.
#
# Artifacts (traces, flight dump, metrics snapshot, loadgen reports,
# server logs) land in artifacts/ for CI upload.
set -euo pipefail
cd "$(dirname "$0")/.."
ART=artifacts
mkdir -p "$ART"
GO=${GO:-go}

$GO build -o "$ART/elmored" ./cmd/elmored
$GO build -o "$ART/loadgen" ./cmd/loadgen

cleanup() {
  # Best-effort: don't leave servers behind on a failed assertion.
  [ -n "${PID1:-}" ] && kill "$PID1" 2>/dev/null || true
  [ -n "${PID2:-}" ] && kill "$PID2" 2>/dev/null || true
  [ -n "${PID3:-}" ] && kill "$PID3" 2>/dev/null || true
}
trap cleanup EXIT

# wait_listen LOGFILE: poll until elmored reports its bound address,
# then echo the base URL.
wait_listen() {
  local log=$1 url i
  for i in $(seq 1 100); do
    url=$(sed -n 's|^elmored listening on \(http://[^ ]*\).*|\1|p' "$log" | head -n1)
    if [ -n "$url" ]; then echo "$url"; return 0; fi
    sleep 0.1
  done
  echo "elmored never listened; log follows" >&2
  cat "$log" >&2
  return 1
}

echo "== phase 1: overload sheds cleanly under seeded faults =="
ELMORE_FAULTS='serve.decode:delay:p=0.3;delay=30ms' ELMORE_FAULT_SEED=11 \
  "$ART/elmored" -addr 127.0.0.1:0 -rate 10 -burst 5 -max-inflight 8 \
  -slo p99=5s -trace "$ART/serve-trace.ndjson" \
  2> "$ART/serve-phase1.log" &
PID1=$!
URL1=$(wait_listen "$ART/serve-phase1.log")

# Two tenants offering ~4x the per-tenant admitted rate: loadgen fails
# if any shed lacks Retry-After, any admitted stream is not
# exactly-once, or admitted latency busts the client-side SLO.
"$ART/loadgen" -url "$URL1" -rate 40 -duration 5s -tenants 2 -jobs 5 \
  -slo p99=5s -expect-shed | tee "$ART/loadgen-overload.json"

curl -fsS "$URL1/metrics" > "$ART/serve-metrics.txt"
grep -q '^serve_slo_p99_good' "$ART/serve-metrics.txt"
grep -Eq '^serve_requests_shed [1-9]' "$ART/serve-metrics.txt"

kill -TERM "$PID1"
wait "$PID1" # graceful drain must exit 0 (set -e enforces)
PID1=
echo "phase 1 ok"

echo "== phase 2: SIGTERM mid-batch, restart, resume exactly-once =="
JDIR="$ART/serve-journal"
rm -rf "$JDIR" "$ART/serve-flight.ndjson"
mkdir -p "$JDIR"

ELMORE_FAULTS='batch.dispatch:delay:every=1;delay=25ms' ELMORE_FAULT_SEED=7 \
  "$ART/elmored" -addr 127.0.0.1:0 -journal-dir "$JDIR" -drain-timeout 1s \
  -flight-dump "$ART/serve-flight.ndjson" \
  2> "$ART/serve-phase2a.log" &
PID2=$!
URL2=$(wait_listen "$ART/serve-phase2a.log")

# Resume-mode loadgen re-POSTs batch "smoke" until its union of
# streams covers every job exactly once — across the restart below.
"$ART/loadgen" -url "$URL2" -resume smoke -jobs 150 -max-resumes 60 \
  > "$ART/loadgen-resume.json" &
LGPID=$!

sleep 1 # 25ms/job puts the batch squarely mid-flight
kill -TERM "$PID2"
wait "$PID2" # mid-batch SIGTERM still exits 0
PID2=
test -s "$ART/serve-flight.ndjson"
grep -q '"sigterm"' "$ART/serve-flight.ndjson"
ls "$JDIR" | grep -q . # journal survives for the next incarnation

# Same address, same journal dir, faults off: full-speed resume.
"$ART/elmored" -addr "${URL2#http://}" -journal-dir "$JDIR" \
  2> "$ART/serve-phase2b.log" &
PID3=$!
wait_listen "$ART/serve-phase2b.log" > /dev/null

if ! wait "$LGPID"; then
  echo "loadgen resume assertions failed:" >&2
  cat "$ART/loadgen-resume.json" >&2
  exit 1
fi
cat "$ART/loadgen-resume.json"
grep -q '"exactly_once_violations": 0' "$ART/loadgen-resume.json"
grep -q '"pass": true' "$ART/loadgen-resume.json"

kill -TERM "$PID3"
wait "$PID3"
PID3=
echo "phase 2 ok"
echo "serve smoke passed"
