#!/usr/bin/env python3
"""Lineage-completeness check for the obs-smoke lane.

Reads the artifacts of a seeded-fault batch run with full observability
armed (results + flight-recorder dump + tracestat -by-trace rollup +
the stderr summary) and asserts the PR 9 contract:

  1. every submitted job produced a result line carrying a well-formed
     32-hex trace_id, and no two jobs share a trace;
  2. the flight recorder produced at least one dump block, every dump
     line parses, and at least one flight event ties back to a known
     job's trace (the dump is not an orphaned ring);
  3. the chaos seed actually degraded jobs, and every degraded job's
     trace appears as a row in the -by-trace rollup — i.e. its full
     attempt lineage is reconstructable from the trace + dump pair;
  4. the summary records the SLO objectives with good+bad == jobs.

Usage: obs_lineage_check.py JOBS RESULTS FLIGHT BYTRACE SUMMARY
"""

import json
import re
import sys

TRACE_RE = re.compile(r"^[0-9a-f]{32}$")


def ndjson(path):
    with open(path) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{n}: not JSON ({e}): {line[:120]}")


def main(jobs_path, results_path, flight_path, bytrace_path, summary_path):
    job_ids = {rec["id"] for rec in ndjson(jobs_path)}

    # 1. Every job -> exactly one result with a unique, well-formed trace.
    trace_by_job, degraded = {}, set()
    for rec in ndjson(results_path):
        tid = rec.get("trace_id", "")
        if not TRACE_RE.match(tid):
            sys.exit(f"job {rec.get('id')}: malformed trace_id {tid!r}")
        trace_by_job[rec["id"]] = tid
        if rec.get("degraded"):
            degraded.add(rec["id"])
    if missing := job_ids - trace_by_job.keys():
        sys.exit(f"jobs with no traced result: {sorted(missing)[:5]}...")
    if len(set(trace_by_job.values())) != len(trace_by_job):
        sys.exit("distinct jobs share a trace_id")

    # 2. The dump exists, parses, and links back to the run.
    headers, linked = 0, 0
    for rec in ndjson(flight_path):
        if rec.get("record") == "flight_dump":
            headers += 1
        elif rec.get("record") == "flight":
            if rec.get("trace_id") in set(trace_by_job.values()):
                linked += 1
        else:
            sys.exit(f"unexpected record in flight dump: {rec}")
    if headers == 0:
        sys.exit("flight dump has no flight_dump header")
    if linked == 0:
        sys.exit("no flight event carries a trace from this run")

    # 3. Degraded lineage is reconstructable from the rollup.
    if not degraded:
        sys.exit("chaos seed degraded no jobs: the lane is not exercising "
                 "the retry/degradation lineage path")
    rollup_traces = set()
    with open(bytrace_path) as f:
        for line in f:
            fields = line.split()
            if fields and TRACE_RE.match(fields[0]):
                rollup_traces.add(fields[0])
    if len(rollup_traces) != len(trace_by_job):
        sys.exit(f"rollup has {len(rollup_traces)} trace rows, "
                 f"want {len(trace_by_job)} (one per job)")
    for job in sorted(degraded):
        if trace_by_job[job] not in rollup_traces:
            sys.exit(f"degraded job {job}: trace {trace_by_job[job]} "
                     f"missing from the -by-trace rollup")

    # 4. SLO accounting in the summary covers every job. stderr mixes
    # the summary record with human-readable notes, so non-JSON lines
    # are expected here.
    summary = None
    with open(summary_path) as f:
        for line in f:
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict) and rec.get("record") == "batch_summary":
                summary = rec
    if summary is None:
        sys.exit("no batch_summary record on stderr")
    if not summary.get("slo"):
        sys.exit(f"summary has no slo rows: {summary}")
    for row in summary["slo"]:
        if row["good"] + row["bad"] != len(job_ids):
            sys.exit(f"slo row {row} does not account for all "
                     f"{len(job_ids)} jobs")
    if summary.get("latency_source") not in ("exact", "sketch"):
        sys.exit(f"summary latency_source = {summary.get('latency_source')!r}")

    print(f"obs lineage ok: {len(job_ids)} jobs, {len(degraded)} degraded, "
          f"{headers} dump block(s), {linked} flight events linked, "
          f"slo rows {[r['name'] for r in summary['slo']]}")


if __name__ == "__main__":
    if len(sys.argv) != 6:
        sys.exit(__doc__)
    main(*sys.argv[1:])
